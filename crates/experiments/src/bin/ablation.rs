//! Ablations A1–A4.
//! Usage: ablation [sigma|coupling|density|topology|all]
//!                 [--engine stepped|event|adaptive]
//!                 [--faults churn-light|churn-heavy|lossy|PLAN.json]
//!                 [--trace DIR] [--telemetry DIR]
//!
//! `--engine` selects the slot engine for the radio-backed sweeps
//! (A1, A3); results are bit-identical under every setting.
//!
//! With `--trace DIR`, additionally runs one traced ST trial of the
//! Table-I baseline ablation scenario (n = AblationParams default,
//! master seed): a JSONL event log at DIR/ablation_st.jsonl plus
//! results/timeline_ablation_st.csv. `--faults` attaches a seeded
//! churn / frame-loss plan to that traced trial, so the timeline shows
//! the fragment split and re-convergence after each fault.
//!
//! With `--telemetry DIR`, runs one self-profiled ST trial of the same
//! baseline scenario: a run manifest at DIR/ablation_st.json (+ .prom),
//! readable with `perf_inspect`.

use ffd2d_core::ScenarioConfig;
use ffd2d_experiments::ablation::{
    coupling_sweep, density_sweep, shadowing_sweep, topology_comparison, AblationParams,
};
use ffd2d_sim::time::SlotDuration;

fn main() {
    // Validate `--trace` / `--telemetry` / `--faults` usage before
    // paying for the sweeps.
    let trace_dir = ffd2d_experiments::trace_dir_from_args();
    let telemetry_dir = ffd2d_experiments::telemetry_dir_from_args();
    let fault_spec = ffd2d_experiments::faults_from_args();
    // A leading flag (e.g. `ablation --engine stepped`) means "all".
    let which = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "all".into());
    let mut params = AblationParams::default();
    if let Some(engine) = ffd2d_experiments::engine_from_args() {
        params.engine = engine;
    }
    if let Some(mode) = ffd2d_experiments::gain_cache_from_args() {
        params.gain_cache = mode;
    }
    if which == "sigma" || which == "all" {
        println!("== A1: shadowing sigma sweep (ST, n={}) ==", params.n);
        for p in shadowing_sweep(&params, &[0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0]) {
            println!(
                "  sigma={:4.1} dB: time {:7.0} ms (±{:.0}), msgs {:8.0}",
                p.x,
                p.time_ms.mean(),
                p.time_ms.ci95_half_width(),
                p.messages.mean()
            );
        }
    }
    if which == "coupling" || which == "all" {
        // Small population: with synchronous in-slot cascades a large
        // all-to-all mesh absorbs in one slot, hiding the ε effect.
        let params = AblationParams {
            n: 10,
            trials: 10,
            horizon: SlotDuration(400_000),
            ..params
        };
        println!(
            "== A2: coupling strength sweep (radio-free mesh, n={}) ==",
            params.n
        );
        for p in coupling_sweep(&params, &[0.01, 0.02, 0.05, 0.1, 0.2]) {
            println!(
                "  eps={:5.2}: slots-to-sync {:8.0} (±{:.0})",
                p.x,
                p.time_ms.mean(),
                p.time_ms.ci95_half_width()
            );
        }
    }
    if which == "density" || which == "all" {
        println!("== A3: density sweep (ST, n={}) ==", params.n);
        for p in density_sweep(&params, &[60.0, 80.0, 100.0, 140.0, 200.0]) {
            println!(
                "  side={:5.0} m: time {:7.0} ms (±{:.0}), msgs {:8.0}",
                p.x,
                p.time_ms.mean(),
                p.time_ms.ci95_half_width(),
                p.messages.mean()
            );
        }
    }
    if which == "topology" || which == "all" {
        let params = AblationParams {
            n: 16,
            trials: 10,
            horizon: SlotDuration(2_000_000),
            ..params
        };
        println!(
            "== A4: mesh vs path coupling (radio-free, n={}) ==",
            params.n
        );
        let (mesh, path) = topology_comparison(&params);
        println!(
            "  mesh: {:8.0} slots (±{:.0})",
            mesh.mean(),
            mesh.ci95_half_width()
        );
        println!(
            "  path: {:8.0} slots (±{:.0})",
            path.mean(),
            path.ci95_half_width()
        );
    }
    if trace_dir.is_some() || telemetry_dir.is_some() {
        let params = AblationParams::default();
        let faults = match &fault_spec {
            Some(spec) => match ffd2d_core::FaultPlan::resolve(spec, params.n, params.horizon.0) {
                Ok(plan) => plan,
                Err(e) => {
                    eprintln!("--faults: {e}");
                    std::process::exit(2);
                }
            },
            None => ffd2d_core::FaultPlan::none(),
        };
        let scenario = ScenarioConfig::table1(params.n)
            .seeded(params.seed)
            .with_max_slots(params.horizon)
            .with_faults(faults);
        if let Some(dir) = trace_dir {
            match ffd2d_experiments::trace::write_st_trace(&scenario, &dir, "ablation_st") {
                Ok(path) => eprintln!(
                    "traced baseline ST trial: {} + results/timeline_ablation_st.csv",
                    path.display()
                ),
                Err(e) => {
                    eprintln!("--trace failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(dir) = telemetry_dir {
            match ffd2d_experiments::telemetry::write_st_telemetry(&scenario, &dir, "ablation_st") {
                Ok(path) => eprintln!(
                    "profiled baseline ST trial: {} (render with perf_inspect)",
                    path.display()
                ),
                Err(e) => {
                    eprintln!("--telemetry failed: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}
