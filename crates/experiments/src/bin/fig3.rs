//! Regenerates the paper's Fig. 3 (convergence time vs. number of
//! nodes, ST vs. FST).
//!
//! Usage: fig3 [--quick] [--trials N] [--max-n M] [--horizon SLOTS]
//! Writes results/fig3.csv. The sweep is identical to fig4's — run
//! `fig4` for the message view of the same simulations.

use ffd2d_experiments::sweep::run_paper_sweep;

fn main() {
    let params = ffd2d_experiments::sweep_params_from_args();
    eprintln!(
        "running paired sweep: n = {:?}, {} trials, horizon {} slots ...",
        params.node_counts, params.trials, params.horizon.0
    );
    let report = run_paper_sweep(&params);
    println!("{}", report.to_table().to_markdown());
    if let Some(x) = report.crossover(false) {
        println!("time crossover (ST below FST) at n = {x}");
    }
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/fig3.csv", report.fig3().to_csv());
    let _ = std::fs::write("results/fig4.csv", report.fig4().to_csv());
    eprintln!("wrote results/fig3.csv and results/fig4.csv (shared sweep)");
}
