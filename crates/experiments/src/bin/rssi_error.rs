//! Experiment E5: measured vs. closed-form RSSI ranging error.

use ffd2d_experiments::rssi_error::{run, RssiErrorParams};

fn main() {
    let report = run(&RssiErrorParams::default());
    println!("{}", report.to_table().to_markdown());
    println!("ratio histogram (r*/r in [0,4), 40 bins):");
    let total = report.histogram.total();
    for (i, &c) in report.histogram.counts().iter().enumerate() {
        let (lo, hi) = report
            .histogram
            .bin_bounds(i)
            .expect("enumerating counts() stays in range");
        let bar = "#".repeat((c * 200 / total.max(1)) as usize);
        if c > 0 {
            println!("  [{lo:.1},{hi:.1}) {bar}");
        }
    }
}
