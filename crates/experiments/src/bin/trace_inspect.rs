//! Summarize a JSONL protocol trace written by `--trace` (or any
//! [`ffd2d_trace::JsonlSink`] log).
//!
//! Usage: trace_inspect <trace.jsonl>
//!
//! Prints:
//! * run verdict (converged / censored at slot N);
//! * a per-phase message breakdown (tx per RACH codec, rx outcomes,
//!   oscillator adjustments, merge handshake traffic) using the
//!   `phase_enter` events as boundaries;
//! * the merge tree of fragment lineage reconstructed from
//!   `fragment_commit` events (which fragment head absorbed which);
//! * time-to-X%-discovery milestones and per-slot collision-rate
//!   percentiles via `ffd2d-metrics`.
//!
//! The per-slot folding reuses [`ffd2d_trace::TimelineSink`] — the
//! inspector replays the log through the same sink the live run used,
//! so offline numbers match online ones by construction.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader};
use std::process::ExitCode;

use ffd2d_metrics::Percentiles;
use ffd2d_trace::{parse_event, TimelineSink, TraceEvent, TraceSink};

/// Message tallies for one protocol phase.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
struct PhaseTally {
    rach1_tx: u64,
    rach2_tx: u64,
    rx_ok: u64,
    rx_collision: u64,
    rx_below_threshold: u64,
    phase_adjusts: u64,
    merge_requests: u64,
    merge_accepts: u64,
    merge_rejects: u64,
    commits: u64,
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_inspect <trace.jsonl>");
        return ExitCode::from(2);
    };
    let file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("trace_inspect: cannot open {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut timeline = TimelineSink::new();
    let mut phases: BTreeMap<String, PhaseTally> = BTreeMap::new();
    let mut current_phase = String::from("(pre-phase)");
    // Deduplicated lineage edges: absorbed fragment head -> (survivor, slot).
    let mut absorbed_into: BTreeMap<u32, (u32, u64)> = BTreeMap::new();
    let mut survivors: BTreeSet<u32> = BTreeSet::new();
    let mut converged_at: Option<u64> = None;
    let mut run_end: Option<(u64, bool)> = None;
    let mut events = 0u64;
    let mut unparsed = 0u64;

    for line in BufReader::new(file).lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("trace_inspect: read error in {path}: {e}");
                return ExitCode::from(2);
            }
        };
        if line.is_empty() {
            continue;
        }
        let Some(ev) = parse_event(&line) else {
            unparsed += 1;
            continue;
        };
        events += 1;
        timeline.event(&ev);
        let tally = phases.entry(current_phase.clone()).or_default();
        match &ev {
            TraceEvent::PhaseEnter { phase, .. } => {
                current_phase = phase.name().to_string();
                phases.entry(current_phase.clone()).or_default();
            }
            // Saturating like `Counters`: tallies over an arbitrarily
            // long trace must clamp rather than wrap.
            TraceEvent::Tx { codec, .. } => match codec {
                ffd2d_trace::Codec::Rach1 => tally.rach1_tx = tally.rach1_tx.saturating_add(1),
                ffd2d_trace::Codec::Rach2 => tally.rach2_tx = tally.rach2_tx.saturating_add(1),
            },
            TraceEvent::RxDecode { .. } => tally.rx_ok = tally.rx_ok.saturating_add(1),
            TraceEvent::RxCollision { signals, .. } => {
                tally.rx_collision = tally.rx_collision.saturating_add(u64::from(*signals))
            }
            TraceEvent::RxBelowThreshold { count, .. } => {
                tally.rx_below_threshold = tally.rx_below_threshold.saturating_add(*count)
            }
            TraceEvent::PhaseAdjust { .. } => tally.phase_adjusts += 1,
            TraceEvent::MergeRequest { .. } => tally.merge_requests += 1,
            TraceEvent::MergeAccept { .. } => tally.merge_accepts += 1,
            TraceEvent::MergeReject { .. } => tally.merge_rejects += 1,
            TraceEvent::FragmentCommit {
                slot,
                survivor,
                old_head,
                ..
            } => {
                tally.commits += 1;
                survivors.insert(*survivor);
                if old_head != survivor {
                    absorbed_into.entry(*old_head).or_insert((*survivor, *slot));
                }
            }
            TraceEvent::Converged { slot } => converged_at = Some(*slot),
            TraceEvent::RunEnd { slot, converged } => run_end = Some((*slot, *converged)),
            _ => {}
        }
    }

    if events == 0 {
        eprintln!("trace_inspect: {path}: no parseable events ({unparsed} bad lines)");
        return ExitCode::from(2);
    }

    println!("trace: {path}");
    println!("events: {events} ({unparsed} unparseable lines skipped)");
    match (converged_at, run_end) {
        (Some(s), _) => println!("verdict: CONVERGED at slot {s}"),
        (None, Some((s, _))) => println!("verdict: CENSORED (still running at slot {s})"),
        (None, None) => println!("verdict: UNKNOWN (no converged/run_end event — truncated log?)"),
    }

    println!("\nper-phase message breakdown:");
    println!(
        "  {:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>7} {:>7} {:>7}",
        "phase",
        "rach1_tx",
        "rach2_tx",
        "rx_ok",
        "rx_coll",
        "rx_fade",
        "adjusts",
        "m_req",
        "m_acc",
        "m_rej"
    );
    for (name, t) in &phases {
        if *t == PhaseTally::default() && name == "(pre-phase)" {
            continue;
        }
        println!(
            "  {:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>7} {:>7} {:>7}",
            name,
            t.rach1_tx,
            t.rach2_tx,
            t.rx_ok,
            t.rx_collision,
            t.rx_below_threshold,
            t.phase_adjusts,
            t.merge_requests,
            t.merge_accepts,
            t.merge_rejects
        );
    }

    print_merge_tree(&absorbed_into, &survivors);
    print_milestones(&mut timeline);
    ExitCode::SUCCESS
}

/// Reconstruct and print the fragment lineage: which heads were
/// absorbed into which survivors, as a forest rooted at the fragments
/// that were never absorbed themselves.
fn print_merge_tree(absorbed_into: &BTreeMap<u32, (u32, u64)>, survivors: &BTreeSet<u32>) {
    println!("\nmerge tree (fragment lineage):");
    if absorbed_into.is_empty() {
        println!("  (no fragment merges in this trace)");
        return;
    }
    let mut children: BTreeMap<u32, Vec<(u32, u64)>> = BTreeMap::new();
    for (&child, &(parent, slot)) in absorbed_into {
        children.entry(parent).or_default().push((child, slot));
    }
    let roots: Vec<u32> = survivors
        .iter()
        .copied()
        .filter(|s| !absorbed_into.contains_key(s))
        .collect();
    println!(
        "  {} merges, {} surviving root(s): {:?}",
        absorbed_into.len(),
        roots.len(),
        roots
    );
    const MAX_LINES: usize = 60;
    let mut printed = 0usize;
    let mut elided = 0usize;
    for &root in &roots {
        print_subtree(
            root,
            None,
            1,
            &children,
            &mut printed,
            &mut elided,
            MAX_LINES,
        );
    }
    if elided > 0 {
        println!("  ... ({elided} more lineage entries elided)");
    }
}

fn print_subtree(
    frag: u32,
    merged_at: Option<u64>,
    depth: usize,
    children: &BTreeMap<u32, Vec<(u32, u64)>>,
    printed: &mut usize,
    elided: &mut usize,
    max_lines: usize,
) {
    if *printed >= max_lines {
        *elided += 1;
    } else {
        let indent = "  ".repeat(depth);
        match merged_at {
            None => println!("{indent}fragment {frag}"),
            Some(slot) => println!("{indent}<- fragment {frag} (absorbed at slot {slot})"),
        }
        *printed += 1;
    }
    if let Some(kids) = children.get(&frag) {
        for &(child, slot) in kids {
            print_subtree(
                child,
                Some(slot),
                depth + 1,
                children,
                printed,
                elided,
                max_lines,
            );
        }
    }
}

/// Discovery milestones and per-slot collision-rate percentiles from
/// the replayed timeline.
fn print_milestones(timeline: &mut TimelineSink) {
    let rows = timeline.rows();
    if rows.is_empty() {
        println!("\n(no slot_stats events — timeline section unavailable)");
        return;
    }
    println!("\ndiscovery milestones (time to X% of ground-truth links):");
    for pct in [50.0, 90.0, 95.0, 99.0, 100.0] {
        match timeline.slot_reaching_completeness(pct / 100.0) {
            Some(slot) => println!("  {pct:>5.0}% : slot {slot}"),
            None => println!("  {pct:>5.0}% : never reached"),
        }
    }
    let rows = timeline.rows();
    let mut coll = Percentiles::from_samples(rows.iter().map(|r| r.collision_rate()));
    let mut spread = Percentiles::from_samples(rows.iter().map(|r| r.phase_spread));
    println!(
        "\nper-slot collision rate: median {:.4}, p95 {:.4}, max {:.4}",
        coll.median().unwrap_or(0.0),
        coll.p95().unwrap_or(0.0),
        coll.quantile(1.0).unwrap_or(0.0)
    );
    println!(
        "per-slot sync error (phase spread): median {:.4}, p95 {:.4}",
        spread.median().unwrap_or(0.0),
        spread.p95().unwrap_or(0.0)
    );
    let last = rows[rows.len() - 1];
    println!(
        "final slot {}: {} fragment(s), discovery {:.1}%, phase spread {:.4}",
        last.slot,
        last.fragments,
        100.0 * last.discovery_completeness(),
        last.phase_spread
    );
}
