//! `--telemetry` support for the figure binaries.
//!
//! The sweep itself runs unrecorded (self-profiling hundreds of trials
//! would only profile the profiler). When `--telemetry <dir>` is
//! passed, the binaries additionally **replay trial 0 of every node
//! count** — under the exact [`TrialCtx`] seed the sweep used, so the
//! profiled run is the same simulation the figure's first sample came
//! from — with an enabled [`Telemetry`] recorder attached to both
//! protocols:
//!
//! * `<dir>/st_n{n}.json`, `<dir>/fst_n{n}.json` — run manifests
//!   (config echo, seed, wall clock, counters, timer quantiles; the
//!   input of `perf_inspect`);
//! * `<dir>/st_n{n}.prom`, `<dir>/fst_n{n}.prom` — the same registry
//!   as a Prometheus text exposition;
//! * `<dir>/sweep.json` — a sweep-level rollup (per-cell wall clock,
//!   materialized-slot throughput, manifest paths).
//!
//! Telemetry is observational: the replayed outcomes are bit-identical
//! to the unrecorded sweep cells (locked by `tests/telemetry.rs`).

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::Instant;

use ffd2d_baseline::FstProtocol;
use ffd2d_core::{ScenarioConfig, StProtocol, World};
use ffd2d_parallel::{SweepConfig, TrialCtx};
use ffd2d_telemetry::{RunManifest, Telemetry};

use crate::sweep::SweepParams;

/// Parse `--telemetry <dir>` from argv. `None` when the flag is absent.
/// A bare `--telemetry` with no directory (or with another flag where
/// the directory should be) is a hard usage error, not a silent no-op.
pub fn telemetry_dir_from_args() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--telemetry")?;
    match args.get(i + 1) {
        Some(dir) if !dir.starts_with("--") => Some(PathBuf::from(dir)),
        _ => {
            eprintln!("--telemetry requires a directory argument");
            std::process::exit(2);
        }
    }
}

/// One profiled cell, as aggregated into the sweep rollup.
struct CellRecord {
    label: String,
    n: usize,
    wall_clock_ns: u64,
    slots: u64,
    manifest: PathBuf,
}

/// Replay trial 0 of every sweep cell with telemetry enabled, writing
/// run manifests (`.json` + `.prom`) and a sweep rollup under `dir`.
/// Progress (per-cell wall clock, slot throughput, ETA) goes to stderr.
/// Returns the manifest JSON paths written (ST and FST interleaved per
/// node count).
pub fn write_sweep_telemetry(params: &SweepParams, dir: &Path) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let cfg = SweepConfig {
        master_seed: params.master_seed,
        trials: params.trials,
    };
    // Replays are single runs: upgrade `Off` to `Auto` so the sharded
    // medium (and its per-shard telemetry) is exercised. Outcome-
    // neutral; an explicit `--medium-workers` choice is kept as-is.
    let medium = match params.medium {
        ffd2d_core::Parallelism::Off => ffd2d_core::Parallelism::Auto,
        chosen => chosen,
    };
    let cells = params.node_counts.len() * 2;
    let t_sweep = Instant::now();
    let mut done = 0usize;
    let mut records: Vec<CellRecord> = Vec::new();
    let mut written = Vec::new();
    for (param_index, &n) in params.node_counts.iter().enumerate() {
        let seed = TrialCtx::new(&cfg, param_index, 0).seed;
        let faults = match &params.faults {
            Some(spec) => ffd2d_core::FaultPlan::resolve(spec, n, params.horizon.0)
                .map_err(|e| io::Error::other(format!("--faults {spec:?}: {e}")))?,
            None => ffd2d_core::FaultPlan::none(),
        };
        let scenario = ScenarioConfig::table1(n)
            .seeded(seed)
            .with_max_slots(params.horizon)
            .with_engine(params.engine)
            .with_parallelism(medium)
            .with_gain_cache(params.gain_cache)
            .with_faults(faults);
        let world = World::new(&scenario);
        for (proto, stem) in [("st", format!("st_n{n}")), ("fst", format!("fst_n{n}"))] {
            let mut rec = Telemetry::new();
            let t0 = Instant::now();
            match proto {
                "st" => {
                    StProtocol::run_in_instrumented(&world, &mut ffd2d_trace::NullSink, &mut rec)
                }
                _ => FstProtocol::run_in_instrumented(&world, &mut ffd2d_trace::NullSink, &mut rec),
            };
            let wall_clock_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let manifest = manifest_for(&stem, proto, &scenario, params, wall_clock_ns, rec);
            let json_path = write_manifest(dir, &stem, &manifest)?;
            done += 1;
            let slots = manifest.telemetry.counter("engine.slots_materialized");
            progress_line(&stem, done, cells, wall_clock_ns, slots, t_sweep.elapsed());
            records.push(CellRecord {
                label: stem,
                n,
                wall_clock_ns,
                slots,
                manifest: json_path.clone(),
            });
            written.push(json_path);
        }
    }
    fs::write(dir.join("sweep.json"), rollup_json(&records))?;
    Ok(written)
}

/// Profile a single ST trial of an arbitrary scenario (the ablation
/// binary's `--telemetry` path): manifest to `<dir>/{stem}.json` +
/// `<dir>/{stem}.prom`. Returns the JSON path.
pub fn write_st_telemetry(
    scenario: &ScenarioConfig,
    dir: &Path,
    stem: &str,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let world = World::new(scenario);
    let mut rec = Telemetry::new();
    let t0 = Instant::now();
    StProtocol::run_in_instrumented(&world, &mut ffd2d_trace::NullSink, &mut rec);
    let wall_clock_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let config = scenario_config_echo("st", scenario);
    let manifest = RunManifest {
        label: stem.to_string(),
        config,
        wall_clock_ns,
        telemetry: rec,
    };
    write_manifest(dir, stem, &manifest)
}

/// Build a cell manifest: label + ordered config echo + registry.
fn manifest_for(
    stem: &str,
    proto: &str,
    scenario: &ScenarioConfig,
    params: &SweepParams,
    wall_clock_ns: u64,
    rec: Telemetry,
) -> RunManifest {
    let mut config = scenario_config_echo(proto, scenario);
    config.push(("trials".to_string(), params.trials.to_string()));
    config.push((
        "master_seed".to_string(),
        format!("{:#x}", params.master_seed),
    ));
    RunManifest {
        label: stem.to_string(),
        config,
        wall_clock_ns,
        telemetry: rec,
    }
}

/// The ordered (key, value) configuration echo shared by every
/// manifest: enough to re-run the exact cell.
fn scenario_config_echo(proto: &str, scenario: &ScenarioConfig) -> Vec<(String, String)> {
    vec![
        ("protocol".to_string(), proto.to_string()),
        ("n".to_string(), scenario.sim.n_devices.to_string()),
        ("seed".to_string(), scenario.sim.seed.to_string()),
        ("horizon".to_string(), scenario.sim.max_slots.0.to_string()),
        (
            "engine".to_string(),
            match scenario.engine {
                ffd2d_core::EngineMode::Stepped => "stepped".to_string(),
                ffd2d_core::EngineMode::EventDriven => "event".to_string(),
                ffd2d_core::EngineMode::Adaptive => "adaptive".to_string(),
            },
        ),
        (
            "medium_workers".to_string(),
            match scenario.parallelism {
                ffd2d_core::Parallelism::Off => "off".to_string(),
                ffd2d_core::Parallelism::Auto => "auto".to_string(),
                ffd2d_core::Parallelism::Fixed(k) => k.to_string(),
            },
        ),
        (
            "gain_cache".to_string(),
            match scenario.gain_cache {
                ffd2d_core::GainCacheMode::Epoch => "epoch".to_string(),
                ffd2d_core::GainCacheMode::Off => "off".to_string(),
            },
        ),
        (
            "faults".to_string(),
            if scenario.faults.is_none() {
                "none".to_string()
            } else {
                "scheduled".to_string()
            },
        ),
    ]
}

/// Write `<dir>/{stem}.json` and `<dir>/{stem}.prom`; returns the JSON
/// path.
fn write_manifest(dir: &Path, stem: &str, manifest: &RunManifest) -> io::Result<PathBuf> {
    let json_path = dir.join(format!("{stem}.json"));
    fs::write(&json_path, manifest.to_json())?;
    fs::write(dir.join(format!("{stem}.prom")), manifest.to_prometheus())?;
    Ok(json_path)
}

/// One per-cell progress line with throughput and a naive ETA
/// (remaining cells at the mean observed pace; later cells are bigger,
/// so it is a floor, not a promise).
fn progress_line(
    stem: &str,
    done: usize,
    cells: usize,
    wall_clock_ns: u64,
    slots: u64,
    sweep_elapsed: std::time::Duration,
) {
    let secs = wall_clock_ns as f64 / 1e9;
    let throughput = if secs > 0.0 { slots as f64 / secs } else { 0.0 };
    let eta = sweep_elapsed.as_secs_f64() / done as f64 * (cells - done) as f64;
    let mut err = io::stderr().lock();
    let _ = writeln!(
        err,
        "[telemetry {done}/{cells}] {stem}: {secs:.3} s, {slots} slots materialized ({throughput:.0} slots/s), eta ~{eta:.1} s"
    );
}

/// The sweep-level rollup document.
fn rollup_json(records: &[CellRecord]) -> String {
    let total_ns: u64 = records.iter().map(|r| r.wall_clock_ns).sum();
    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"schema\": \"ffd2d-telemetry-sweep/1\",\n");
    out.push_str(&format!("  \"total_wall_clock_ns\": {total_ns},\n"));
    out.push_str("  \"cells\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let secs = r.wall_clock_ns as f64 / 1e9;
        let throughput = if secs > 0.0 {
            r.slots as f64 / secs
        } else {
            0.0
        };
        out.push_str(&format!(
            "\n    {{\"label\": \"{}\", \"n\": {}, \"wall_clock_ns\": {}, \"slots_materialized\": {}, \"slots_per_sec\": {:.1}, \"manifest\": \"{}\"}}",
            r.label,
            r.n,
            r.wall_clock_ns,
            r.slots,
            throughput,
            r.manifest.display()
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}
