//! # ffd2d-experiments — reproduction of every table and figure
//!
//! One module per paper artefact (see DESIGN.md §3 for the experiment
//! index):
//!
//! | Module | Paper artefact |
//! |--------|----------------|
//! | [`table1`] | Table I — simulation parameters |
//! | [`fig2`] | Fig. 2 — an instance of the firefly spanning tree |
//! | [`sweep`] | Figs. 3 & 4 — convergence time and message exchanges vs. number of nodes, ST vs. FST (one Monte-Carlo sweep feeds both figures) |
//! | [`rssi_error`] | §III eqs. (6)–(12) — measured vs. closed-form RSSI ranging error (E5) |
//! | [`ablation`] | A1–A4 — shadowing σ, coupling ε, density, and topology ablations |
//! | [`complexity`] | §V — O(n²) vs. O(n log n) firefly-update work (the paper's central complexity claim) |
//!
//! Every experiment is a pure function of its parameters + master seed
//! and returns `ffd2d-metrics` figures/tables; the `src/bin/*` binaries
//! print them and (optionally) write CSVs under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod complexity;
pub mod fig2;
pub mod rssi_error;
pub mod sweep;
pub mod table1;
pub mod telemetry;
pub mod trace;

pub use sweep::{run_paper_sweep, SweepParams, SweepReport};
pub use telemetry::{telemetry_dir_from_args, write_sweep_telemetry};
pub use trace::{trace_dir_from_args, write_sweep_traces};

/// Parse the common sweep flags shared by the `fig3`/`fig4` binaries:
/// `--quick`, `--trials N`, `--max-n M`, `--nodes LIST` (replace the
/// sweep's node counts with an explicit comma-separated list, e.g.
/// `--nodes 5000` to profile one out-of-sweep cell), `--horizon SLOTS`,
/// `--engine stepped|event|adaptive`, `--medium-workers off|auto|K`,
/// `--gain-cache epoch|off`,
/// `--faults churn-light|churn-heavy|lossy|PLAN.json` (see
/// [`trace_dir_from_args`] for the `--trace DIR` flag).
///
/// Medium parallelism defaults by workload shape: a multi-trial sweep
/// keeps it `Off` (the trial layer already fills the cores), while
/// `--trials 1` flips it to `Auto` so a single run can use them. An
/// explicit `--medium-workers` always wins. Either way the results are
/// bit-identical (locked by `tests/medium_equivalence.rs` and
/// `tests/engine_equivalence.rs`) — only wall clock moves.
pub fn sweep_params_from_args() -> SweepParams {
    let args: Vec<String> = std::env::args().collect();
    let mut params = if args.iter().any(|a| a == "--quick") {
        SweepParams::quick()
    } else {
        SweepParams::default()
    };
    let value_of = |flag: &str| -> Option<u64> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    if let Some(t) = value_of("--trials") {
        params.trials = t as u32;
    }
    if let Some(m) = value_of("--max-n") {
        params.node_counts.retain(|&n| n as u64 <= m);
    }
    if let Some(i) = args.iter().position(|a| a == "--nodes") {
        let parsed: Option<Vec<usize>> = args
            .get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .map(|v| v.split(',').map(|n| n.trim().parse().ok()).collect())
            .unwrap_or(None);
        match parsed {
            Some(counts) if !counts.is_empty() => params.node_counts = counts,
            _ => {
                eprintln!("--nodes requires a comma-separated list of node counts, e.g. 1000,5000");
                std::process::exit(2);
            }
        }
    }
    if let Some(h) = value_of("--horizon") {
        params.horizon = ffd2d_sim::time::SlotDuration(h);
    }
    if let Some(engine) = engine_from_args() {
        params.engine = engine;
    }
    params.medium = match medium_workers_from_args() {
        Some(p) => p,
        None if params.trials == 1 => ffd2d_core::Parallelism::Auto,
        None => params.medium,
    };
    if let Some(mode) = gain_cache_from_args() {
        params.gain_cache = mode;
    }
    params.faults = faults_from_args();
    params
}

/// Parse the `--faults <spec>` flag shared by the experiment binaries:
/// a churn preset (`churn-light`, `churn-heavy`, `lossy`) or a path to
/// a `.json` fault plan. The spec is validated eagerly against a
/// representative population so a typo fails here, not after the sweep
/// has burned CPU; presets are re-resolved per node count inside the
/// sweep (they scale with the population).
pub fn faults_from_args() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--faults")?;
    match args.get(i + 1) {
        Some(spec) if !spec.starts_with("--") => {
            if let Err(e) = ffd2d_core::FaultPlan::resolve(spec, 50, 30_000) {
                eprintln!("--faults: {e}");
                std::process::exit(2);
            }
            Some(spec.clone())
        }
        _ => {
            eprintln!(
                "--faults requires a value: 'churn-light', 'churn-heavy', 'lossy', or a .json path"
            );
            std::process::exit(2);
        }
    }
}

/// Parse the `--engine stepped|event|adaptive` flag shared by the
/// experiment binaries. `None` when the flag is absent (callers keep
/// their default, [`ffd2d_core::EngineMode::Adaptive`]); exits with a
/// usage error on an unrecognized value — all three engines produce
/// identical results (see `tests/engine_equivalence.rs`), so a typo
/// silently falling back would be invisible in the output.
pub fn engine_from_args() -> Option<ffd2d_core::EngineMode> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--engine")?;
    match args
        .get(i + 1)
        .and_then(|v| ffd2d_core::EngineMode::from_flag(v))
    {
        Some(mode) => Some(mode),
        None => {
            eprintln!("--engine must be one of 'stepped', 'event', 'adaptive'");
            std::process::exit(2);
        }
    }
}

/// Parse the `--gain-cache epoch|off` flag shared by the experiment
/// binaries. `None` when the flag is absent (callers keep their
/// default, [`ffd2d_core::GainCacheMode::Epoch`]); exits with a usage
/// error on an unrecognized value — the cache is outcome-neutral
/// (locked by `tests/gain_cache.rs`), so a typo silently falling back
/// would be invisible in the output. `off` exists for A/B timing and
/// for proving neutrality in CI, not for production runs.
pub fn gain_cache_from_args() -> Option<ffd2d_core::GainCacheMode> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--gain-cache")?;
    match args
        .get(i + 1)
        .and_then(|v| ffd2d_core::GainCacheMode::from_flag(v))
    {
        Some(mode) => Some(mode),
        None => {
            eprintln!("--gain-cache requires a value: 'epoch' (or 'on') or 'off'");
            std::process::exit(2);
        }
    }
}

/// Parse the `--medium-workers off|auto|K` flag shared by the
/// experiment binaries. `None` when the flag is absent (callers apply
/// their workload-shaped default); exits with a usage error on an
/// unrecognized value — the knob is outcome-neutral, so a typo
/// silently falling back would be invisible in the output.
pub fn medium_workers_from_args() -> Option<ffd2d_core::Parallelism> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--medium-workers")?;
    match args
        .get(i + 1)
        .and_then(|v| ffd2d_core::Parallelism::from_flag(v))
    {
        Some(p) => Some(p),
        None => {
            eprintln!("--medium-workers requires a value: 'off', 'auto', or a worker count");
            std::process::exit(2);
        }
    }
}
