//! §V's complexity claim — `O(n²)` basic FFA vs. `O(n log n)` ordered.
//!
//! The paper's central analytical argument: the basic firefly algorithm
//! evaluates eq. (13) `O(n)` times per firefly per sweep (`O(n²)`
//! total), while keeping the fireflies rank-ordered reduces the search
//! for a brighter firefly to `O(log n)`. This experiment counts the
//! actual comparison work of both implementations across a population
//! sweep, producing the asymptotic-separation figure; `ffd2d-bench`
//! measures the same claim in wall time.

use ffd2d_core::ffa::{ffa_naive, ffa_ranked, FfaConfig};
use ffd2d_metrics::{Figure, Series, Table};
use ffd2d_sim::rng::{StreamId, StreamRng};
use rand::Rng;

/// Parameters for the complexity sweep.
#[derive(Debug, Clone)]
pub struct ComplexityParams {
    /// Population sizes.
    pub sizes: Vec<usize>,
    /// FFA sweeps per run (small: the count scales linearly with it).
    pub iterations: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for ComplexityParams {
    fn default() -> Self {
        ComplexityParams {
            sizes: vec![50, 100, 200, 400, 800, 1600],
            iterations: 3,
            seed: 0xC0,
        }
    }
}

/// Per-size comparison counts.
#[derive(Debug, Clone)]
pub struct ComplexityReport {
    /// `(n, naive comparisons, ranked comparisons)`.
    pub rows: Vec<(usize, u64, u64)>,
}

/// Arena-scale objective: maximise PS strength toward a virtual optimum
/// (a stand-in for the brightness landscape of Algorithm 3).
fn brightness(p: [f64; 2]) -> f64 {
    -((p[0] - 50.0).powi(2) + (p[1] - 50.0).powi(2))
}

/// Run the sweep.
pub fn run(params: &ComplexityParams) -> ComplexityReport {
    let cfg = FfaConfig {
        iterations: params.iterations,
        ..FfaConfig::default()
    };
    let rows = params
        .sizes
        .iter()
        .map(|&n| {
            let mut rng = StreamRng::new(params.seed, n as u64, StreamId::Experiment);
            let mut pop: Vec<[f64; 2]> = (0..n)
                .map(|_| [rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)])
                .collect();
            let mut pop2 = pop.clone();
            let mut rng2 = rng.clone();
            let naive = ffa_naive(&mut pop, brightness, &cfg, &mut rng);
            let ranked = ffa_ranked(&mut pop2, brightness, &cfg, &mut rng2);
            (n, naive.comparisons, ranked.comparisons)
        })
        .collect();
    ComplexityReport { rows }
}

impl ComplexityReport {
    /// The figure: comparison counts vs. population size, both variants.
    pub fn to_figure(&self) -> Figure {
        let mut naive = Series::new("basic FFA O(n^2)");
        let mut ranked = Series::new("ordered FFA O(n log n)");
        for &(n, a, b) in &self.rows {
            naive.push(n as f64, a as f64);
            ranked.push(n as f64, b as f64);
        }
        let mut fig = Figure::new(
            "Firefly update work — basic vs ordered (paper §V)",
            "population size",
            "brightness comparisons",
        );
        fig.series.push(naive);
        fig.series.push(ranked);
        fig
    }

    /// Markdown table with growth factors.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(["n", "naive cmps", "ranked cmps", "naive/ranked"]);
        for &(n, a, b) in &self.rows {
            t.push_row([
                n.to_string(),
                a.to_string(),
                b.to_string(),
                format!("{:.1}x", a as f64 / b as f64),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separation_grows_with_n() {
        let report = run(&ComplexityParams {
            sizes: vec![100, 400, 1600],
            iterations: 2,
            seed: 1,
        });
        let ratios: Vec<f64> = report
            .rows
            .iter()
            .map(|&(_, a, b)| a as f64 / b as f64)
            .collect();
        assert!(ratios[0] > 1.0);
        assert!(ratios[1] > ratios[0]);
        assert!(ratios[2] > ratios[1]);
    }

    #[test]
    fn naive_is_quadratic_ranked_is_quasilinear() {
        let report = run(&ComplexityParams {
            sizes: vec![200, 800],
            iterations: 2,
            seed: 2,
        });
        let (_, naive_s, ranked_s) = report.rows[0];
        let (_, naive_l, ranked_l) = report.rows[1];
        assert!(naive_l as f64 / naive_s as f64 > 12.0, "naive not ~16x");
        assert!((ranked_l as f64 / ranked_s as f64) < 6.0, "ranked not ~4x");
    }

    #[test]
    fn outputs_render() {
        let report = run(&ComplexityParams {
            sizes: vec![64, 128],
            iterations: 1,
            seed: 3,
        });
        assert_eq!(report.to_figure().series.len(), 2);
        assert!(report.to_table().to_markdown().contains('x'));
    }
}
