//! Ablations A1–A4 — the design-choice studies DESIGN.md calls out.
//!
//! * **A1 — shadowing σ sweep**: how channel uncertainty affects the ST
//!   method (σ drives the RSSI ranging error of eq. (12), which drives
//!   edge-weight quality, which drives merge efficiency).
//! * **A2 — coupling ε sweep**: the Mirollo–Strogatz knob of eq. (5);
//!   runs the *radio-free* oscillator population so the effect is
//!   isolated from channel artefacts.
//! * **A3 — density sweep**: fixed n, scaled arena.
//! * **A4 — topology**: mesh vs. tree coupling on the ideal oscillator
//!   population (the paper's core design decision, without any radio).

use ffd2d_core::{EngineMode, GainCacheMode, ScenarioConfig, StProtocol};
use ffd2d_metrics::{Series, Summary};
use ffd2d_osc::network::CoupledNetwork;
use ffd2d_osc::prc::Prc;
use ffd2d_parallel::{run_trials, SweepConfig};
use ffd2d_sim::deployment::Meters;
use ffd2d_sim::rng::{StreamId, StreamRng};
use ffd2d_sim::time::SlotDuration;

/// Common ablation knobs.
#[derive(Debug, Clone, Copy)]
pub struct AblationParams {
    /// Devices per trial.
    pub n: usize,
    /// Trials per sweep point.
    pub trials: u32,
    /// Horizon (censoring point).
    pub horizon: SlotDuration,
    /// Master seed.
    pub seed: u64,
    /// Engine execution strategy for the radio-backed sweeps (A1, A3);
    /// outcome-neutral, see `tests/engine_equivalence.rs`. The
    /// radio-free oscillator studies (A2, A4) have no slot engine.
    pub engine: EngineMode,
    /// Epoch-keyed gain cache for the radio-backed sweeps; also
    /// outcome-neutral, see `tests/gain_cache.rs`.
    pub gain_cache: GainCacheMode,
}

impl Default for AblationParams {
    fn default() -> Self {
        AblationParams {
            n: 100,
            trials: 5,
            horizon: SlotDuration(40_000),
            seed: 0xAB1A,
            engine: EngineMode::default(),
            gain_cache: GainCacheMode::default(),
        }
    }
}

/// One sweep point's reduced stats.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// The swept parameter value.
    pub x: f64,
    /// Convergence time in ms (censored at the horizon).
    pub time_ms: Summary,
    /// Messages until convergence.
    pub messages: Summary,
}

fn run_st_sweep<F>(params: &AblationParams, xs: &[f64], scenario_for: F) -> Vec<Point>
where
    F: Fn(f64) -> ScenarioConfig + Sync,
{
    let cfg = SweepConfig {
        master_seed: params.seed,
        trials: params.trials,
    };
    let horizon = params.horizon;
    let engine = params.engine;
    let gain_cache = params.gain_cache;
    let grouped = run_trials(xs, &cfg, |&x, ctx| {
        let scenario = scenario_for(x)
            .seeded(ctx.seed)
            .with_max_slots(horizon)
            .with_engine(engine)
            .with_gain_cache(gain_cache);
        let out = StProtocol::run(&scenario);
        (
            out.time_or(horizon).as_millis() as f64,
            out.messages() as f64,
        )
    });
    xs.iter()
        .zip(grouped)
        .map(|(&x, samples)| {
            let mut time_ms = Summary::new();
            let mut messages = Summary::new();
            for (t, m) in samples {
                time_ms.push(t);
                messages.push(m);
            }
            Point {
                x,
                time_ms,
                messages,
            }
        })
        .collect()
}

/// A1 — ST convergence vs. shadowing σ (dB).
pub fn shadowing_sweep(params: &AblationParams, sigmas: &[f64]) -> Vec<Point> {
    let n = params.n;
    run_st_sweep(params, sigmas, move |sigma| {
        ScenarioConfig::table1(n).with_shadowing(sigma)
    })
}

/// A3 — ST convergence vs. area side length (m) at fixed n.
pub fn density_sweep(params: &AblationParams, sides_m: &[f64]) -> Vec<Point> {
    let n = params.n;
    run_st_sweep(params, sides_m, move |side| {
        let mut cfg = ScenarioConfig::table1(n);
        cfg.sim.area_width = Meters(side);
        cfg.sim.area_height = Meters(side);
        cfg
    })
}

/// A2 — radio-free coupling-strength sweep on a full mesh: slots to
/// synchrony per ε (the eq. (5) knob in isolation).
pub fn coupling_sweep(params: &AblationParams, epsilons: &[f64]) -> Vec<Point> {
    let cfg = SweepConfig {
        master_seed: params.seed,
        trials: params.trials,
    };
    let horizon = params.horizon.0;
    let n = params.n;
    let grouped = run_trials(epsilons, &cfg, |&eps, ctx| {
        let prc = Prc::from_dissipation(3.0, eps);
        let mut rng = StreamRng::new(ctx.seed, 0, StreamId::Experiment);
        let mut net = CoupledNetwork::full_mesh(n, 100, 5, prc, &mut rng);
        let out = net.run_to_sync(horizon);
        (
            out.slots_to_sync.unwrap_or(horizon) as f64,
            out.pulses_sent as f64,
        )
    });
    epsilons
        .iter()
        .zip(grouped)
        .map(|(&x, samples)| {
            let mut time_ms = Summary::new();
            let mut messages = Summary::new();
            for (t, m) in samples {
                time_ms.push(t);
                messages.push(m);
            }
            Point {
                x,
                time_ms,
                messages,
            }
        })
        .collect()
}

/// A4 — radio-free mesh vs. tree-path coupling: `(mesh, path)` mean
/// slots to synchrony. Isolates the pure-topology effect the tree
/// design trades against its message savings.
pub fn topology_comparison(params: &AblationParams) -> (Summary, Summary) {
    let cfg = SweepConfig {
        master_seed: params.seed,
        trials: params.trials,
    };
    let horizon = params.horizon.0;
    let n = params.n;
    let grouped = run_trials(&[false, true], &cfg, |&tree, ctx| {
        let prc = Prc::standard();
        let mut rng = StreamRng::new(ctx.seed, 0, StreamId::Experiment);
        let mut net = if tree {
            let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
            CoupledNetwork::from_edges(n, &edges, 100, 5, prc, &mut rng)
        } else {
            CoupledNetwork::full_mesh(n, 100, 5, prc, &mut rng)
        };
        net.run_to_sync(horizon).slots_to_sync.unwrap_or(horizon) as f64
    });
    (
        Summary::from_samples(grouped[0].iter().copied()),
        Summary::from_samples(grouped[1].iter().copied()),
    )
}

/// Convert points to a time series for CSV export.
pub fn to_series(label: &str, points: &[Point]) -> Series {
    let mut s = Series::new(label);
    for p in points {
        s.push_with_error(p.x, p.time_ms.mean(), p.time_ms.ci95_half_width());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AblationParams {
        AblationParams {
            n: 20,
            trials: 2,
            horizon: SlotDuration(60_000),
            seed: 5,
            ..Default::default()
        }
    }

    #[test]
    fn shadowing_sweep_runs() {
        let pts = shadowing_sweep(&tiny(), &[0.0, 10.0]);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(p.time_ms.mean() > 0.0);
            assert_eq!(p.time_ms.count(), 2);
        }
    }

    #[test]
    fn coupling_sweep_stronger_is_faster() {
        let params = AblationParams {
            n: 30,
            trials: 3,
            horizon: SlotDuration(300_000),
            seed: 6,
            ..Default::default()
        };
        let pts = coupling_sweep(&params, &[0.01, 0.2]);
        assert!(
            pts[1].time_ms.mean() <= pts[0].time_ms.mean(),
            "eps 0.2 ({}) should beat eps 0.01 ({})",
            pts[1].time_ms.mean(),
            pts[0].time_ms.mean()
        );
    }

    #[test]
    fn topology_mesh_no_slower_than_path() {
        let (mesh, path) = topology_comparison(&AblationParams {
            n: 20,
            trials: 3,
            horizon: SlotDuration(500_000),
            seed: 7,
            ..Default::default()
        });
        assert!(mesh.mean() <= path.mean());
    }

    #[test]
    fn density_sweep_runs() {
        let pts = density_sweep(&tiny(), &[60.0, 100.0]);
        assert_eq!(pts.len(), 2);
        assert!(to_series("d", &pts).points.len() == 2);
    }
}
