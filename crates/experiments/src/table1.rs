//! Table I — simulation parameters.
//!
//! The paper's Table I is the scenario definition; here it is *checked*
//! rather than merely printed: the rendered table is generated from the
//! live configuration defaults, so if a default ever drifts from the
//! paper the test below fails.

use ffd2d_core::ScenarioConfig;
use ffd2d_metrics::Table;
use ffd2d_radio::pathloss::PathLoss;

/// Render Table I from the workspace's configuration defaults.
pub fn render() -> Table {
    let cfg = ScenarioConfig::table1(50);
    let mut t = Table::new(["Parameter", "Paper (Table I)", "Configured default"]);
    t.push_row([
        "Device power".into(),
        "23 dBm".into(),
        format!("{}", cfg.channel.tx_power),
    ]);
    t.push_row([
        "Threshold".into(),
        "-95 dBm".into(),
        format!("{}", cfg.channel.detection_threshold),
    ]);
    t.push_row([
        "Device density".into(),
        "50 devices in 100 m*100 m".into(),
        format!(
            "{} devices in {:.0} m*{:.0} m",
            cfg.sim.n_devices,
            cfg.sim.area_width.get(),
            cfg.sim.area_height.get()
        ),
    ]);
    t.push_row([
        "Fast fading".into(),
        "UMi (NLOS)".into(),
        format!("{:?}", cfg.channel.fading),
    ]);
    t.push_row([
        "Shadowing std dev".into(),
        "10 dB".into(),
        format!("{} dB", cfg.channel.shadowing_sigma_db),
    ]);
    t.push_row([
        "Time slot".into(),
        "1 ms".into(),
        format!("{} ms", ffd2d_sim::time::SLOT_MILLIS),
    ]);
    t.push_row([
        "Propagation model".into(),
        "PL=4.35+25log10(d) if d<6; 40+40log10(d) otherwise".into(),
        match cfg.channel.pathloss {
            PathLoss::PaperPiecewise => "PaperPiecewise (same formulas)".into(),
            other => format!("{other:?}"),
        },
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1_exactly() {
        let cfg = ScenarioConfig::table1(50);
        assert_eq!(cfg.channel.tx_power.get(), 23.0);
        assert_eq!(cfg.channel.detection_threshold.get(), -95.0);
        assert_eq!(cfg.sim.n_devices, 50);
        assert_eq!(cfg.sim.area_width.get(), 100.0);
        assert_eq!(cfg.channel.shadowing_sigma_db, 10.0);
        assert_eq!(ffd2d_sim::time::SLOT_MILLIS, 1);
        assert_eq!(cfg.channel.pathloss, PathLoss::PaperPiecewise);
    }

    #[test]
    fn render_has_all_seven_rows() {
        let t = render();
        assert_eq!(t.len(), 7);
        let md = t.to_markdown();
        assert!(md.contains("23.00 dBm"));
        assert!(md.contains("-95.00 dBm"));
        assert!(md.contains("10 dB"));
    }
}
