//! Fig. 2 — an instance of the basic firefly spanning tree.
//!
//! The paper's Fig. 2 shows a 17-UE example network whose devices
//! "make synchronization by selecting heavy edges". This module builds
//! a 17-UE deployment, derives the PS-strength proximity graph, runs
//! the sequential Algorithm 1, and renders the resulting tree as an
//! indented ASCII listing (plus summary facts the tests pin down).

use ffd2d_core::reference::build_spanning_tree;
use ffd2d_core::{ScenarioConfig, World};
use ffd2d_graph::tree::RootedTree;
use ffd2d_graph::Edge;
use ffd2d_sim::time::SlotDuration;

/// Number of UEs in the paper's Fig. 2 illustration.
pub const FIG2_UES: usize = 17;

/// The rendered figure.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// ASCII rendering of the spanning tree.
    pub rendering: String,
    /// The tree edges (canonical order).
    pub edges: Vec<Edge>,
    /// Total PS-strength weight of the tree.
    pub total_weight_dbm: f64,
    /// The surviving head (tree root).
    pub head: u32,
}

/// Build and render the Fig. 2 instance for a given seed.
pub fn build(seed: u64) -> Fig2 {
    let cfg = ScenarioConfig::table1(FIG2_UES)
        .seeded(seed)
        .with_max_slots(SlotDuration(1));
    let world = World::new(&cfg);
    let st = build_spanning_tree(world.proximity_graph());
    let head = st.heads[0];
    let tree = RootedTree::from_edges(FIG2_UES, head, &st.forest.edges)
        .expect("Fig. 2 deployment must be connected");

    let mut rendering = String::new();
    rendering.push_str(&format!(
        "Firefly spanning tree over {FIG2_UES} UEs (head = UE{head})\n"
    ));
    // Depth-first indented rendering in deterministic child order.
    let mut stack = vec![(head, 0usize)];
    while let Some((v, depth)) = stack.pop() {
        let pos = world.deployment().position(v);
        rendering.push_str(&format!(
            "{}UE{v:<3} at ({:5.1} m, {:5.1} m)\n",
            "  ".repeat(depth),
            pos.x,
            pos.y
        ));
        let mut kids = tree.children(v).to_vec();
        kids.sort_unstable_by(|a, b| b.cmp(a)); // stack pops smallest first
        for c in kids {
            stack.push((c, depth + 1));
        }
    }
    rendering.push_str(&format!(
        "{} edges, total PS strength {:.1} dBm-sum, height {}\n",
        st.forest.edges.len(),
        st.forest.total_weight().get(),
        tree.height()
    ));

    let total_weight_dbm = st.forest.total_weight().get();
    Fig2 {
        rendering,
        edges: st.forest.edges,
        total_weight_dbm,
        head,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffd2d_graph::mst::kruskal_max_st;

    #[test]
    fn seventeen_ues_sixteen_edges() {
        let fig = build(42);
        assert_eq!(fig.edges.len(), FIG2_UES - 1);
        assert!(fig.rendering.contains("UE16"));
        assert!(fig.rendering.lines().count() > FIG2_UES);
    }

    #[test]
    fn tree_is_the_maximum_spanning_tree() {
        let cfg = ScenarioConfig::table1(FIG2_UES)
            .seeded(42)
            .with_max_slots(SlotDuration(1));
        let world = World::new(&cfg);
        let fig = build(42);
        let kruskal = kruskal_max_st(world.proximity_graph());
        assert_eq!(fig.edges, kruskal.edges);
        assert!((fig.total_weight_dbm - kruskal.total_weight().get()).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(build(1).rendering, build(1).rendering);
        assert_ne!(build(1).rendering, build(2).rendering);
    }
}
