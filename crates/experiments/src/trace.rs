//! `--trace` support for the figure binaries.
//!
//! The sweep itself runs untraced (tracing one representative trial is
//! cheap; tracing hundreds is not). When `--trace <dir>` is passed, the
//! binaries additionally **replay trial 0 of every node count** — under
//! the exact [`TrialCtx`] seed the sweep used, so the traced run is the
//! same simulation the figure's first sample came from — with a
//! [`JsonlSink`] + [`TimelineSink`] tee attached to both protocols:
//!
//! * `<dir>/st_n{n}.jsonl`, `<dir>/fst_n{n}.jsonl` — full replayable
//!   event logs (one JSON object per line; see `trace_inspect`);
//! * `results/timeline_st_n{n}.csv`, `results/timeline_fst_n{n}.csv` —
//!   per-slot fragment count, sync error, discovery completeness and
//!   collision rate, ready for plotting.
//!
//! Tracing is observational: the replayed outcomes are bit-identical to
//! the untraced sweep cells (locked by `tests/trace.rs`).

use std::fs::File;
use std::io::{self, BufWriter};
use std::path::{Path, PathBuf};

use ffd2d_baseline::FstProtocol;
use ffd2d_core::{ScenarioConfig, StProtocol, World};
use ffd2d_parallel::{SweepConfig, TrialCtx};
use ffd2d_trace::{JsonlSink, TeeSink, TimelineSink};

use crate::sweep::SweepParams;

/// Parse `--trace <dir>` from argv. `None` when the flag is absent.
/// A bare `--trace` with no directory (or with another flag where the
/// directory should be) is a hard usage error, not a silent no-op.
pub fn trace_dir_from_args() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--trace")?;
    match args.get(i + 1) {
        Some(dir) if !dir.starts_with("--") => Some(PathBuf::from(dir)),
        _ => {
            eprintln!("--trace requires a directory argument");
            std::process::exit(2);
        }
    }
}

/// Replay trial 0 of every sweep cell with tracing enabled, writing
/// JSONL logs under `dir` and timeline CSVs under `results/`. Returns
/// the JSONL paths written (ST and FST interleaved per node count).
pub fn write_sweep_traces(params: &SweepParams, dir: &Path) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    std::fs::create_dir_all("results")?;
    let cfg = SweepConfig {
        master_seed: params.master_seed,
        trials: params.trials,
    };
    let mut written = Vec::new();
    // Replays are single runs, so there is no trial layer to oversubscribe:
    // upgrade `Off` to `Auto` (sharding is byte-identical on the JSONL —
    // locked by `tests/medium_equivalence.rs` — so this is pure wall clock).
    // An explicit `--medium-workers` choice is kept as-is.
    let medium = match params.medium {
        ffd2d_core::Parallelism::Off => ffd2d_core::Parallelism::Auto,
        chosen => chosen,
    };
    for (param_index, &n) in params.node_counts.iter().enumerate() {
        let seed = TrialCtx::new(&cfg, param_index, 0).seed;
        // Faulted sweeps replay under the same per-cell fault plan, so
        // the trace shows the same churn/drops the figure's first
        // sample experienced.
        let faults = match &params.faults {
            Some(spec) => ffd2d_core::FaultPlan::resolve(spec, n, params.horizon.0)
                .map_err(|e| io::Error::other(format!("--faults {spec:?}: {e}")))?,
            None => ffd2d_core::FaultPlan::none(),
        };
        let scenario = ScenarioConfig::table1(n)
            .seeded(seed)
            .with_max_slots(params.horizon)
            .with_parallelism(medium)
            .with_gain_cache(params.gain_cache)
            .with_faults(faults);
        let world = World::new(&scenario);
        written.push(trace_one(dir, &format!("st_n{n}"), |sink| {
            let mut timeline = TimelineSink::new();
            StProtocol::run_in_traced(&world, &mut TeeSink(sink, &mut timeline));
            timeline
        })?);
        written.push(trace_one(dir, &format!("fst_n{n}"), |sink| {
            let mut timeline = TimelineSink::new();
            FstProtocol::run_in_traced(&world, &mut TeeSink(sink, &mut timeline));
            timeline
        })?);
    }
    Ok(written)
}

/// Trace a single ST trial of an arbitrary scenario (the ablation
/// binary's `--trace` path): JSONL to `<dir>/{stem}.jsonl`, timeline
/// CSV to `results/timeline_{stem}.csv`.
pub fn write_st_trace(scenario: &ScenarioConfig, dir: &Path, stem: &str) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    std::fs::create_dir_all("results")?;
    let world = World::new(scenario);
    trace_one(dir, stem, |sink| {
        let mut timeline = TimelineSink::new();
        StProtocol::run_in_traced(&world, &mut TeeSink(sink, &mut timeline));
        timeline
    })
}

/// Run one traced trial: JSONL to `<dir>/{stem}.jsonl`, timeline CSV to
/// `results/timeline_{stem}.csv`.
fn trace_one(
    dir: &Path,
    stem: &str,
    run: impl FnOnce(&mut JsonlSink<BufWriter<File>>) -> TimelineSink,
) -> io::Result<PathBuf> {
    let jsonl_path = dir.join(format!("{stem}.jsonl"));
    let mut jsonl = JsonlSink::new(BufWriter::new(File::create(&jsonl_path)?));
    let timeline = run(&mut jsonl);
    if let Some(e) = jsonl.io_error() {
        return Err(io::Error::new(
            e.kind(),
            format!("writing {jsonl_path:?}: {e}"),
        ));
    }
    std::fs::write(format!("results/timeline_{stem}.csv"), timeline.to_csv())?;
    Ok(jsonl_path)
}
