//! Experiment E5 — the RSSI ranging error model (eqs. (6)–(12)).
//!
//! Validates the paper's analytical backbone end to end: deploy two
//! devices at a known distance, sample the *actual simulated channel*
//! (path loss + shadowing) over many trials, range through the
//! inverted path-loss model, and compare the measured distribution of
//! the ratio `r*/r = 1 + ε` against its log-normal closed form.

use ffd2d_metrics::{Histogram, Summary, Table};
use ffd2d_radio::pathloss::PathLoss;
use ffd2d_radio::rssi::{ranging_error_stats, RangingEstimate};
use ffd2d_radio::shadowing::ShadowingField;
use ffd2d_radio::units::Dbm;
use ffd2d_sim::deployment::Meters;

/// Parameters of the E5 experiment.
#[derive(Debug, Clone, Copy)]
pub struct RssiErrorParams {
    /// True link distance.
    pub distance: Meters,
    /// Shadowing standard deviation (Table I: 10 dB).
    pub sigma_db: f64,
    /// Monte-Carlo links sampled.
    pub samples: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for RssiErrorParams {
    fn default() -> Self {
        RssiErrorParams {
            distance: Meters(40.0),
            sigma_db: 10.0,
            samples: 50_000,
            seed: 0xE5,
        }
    }
}

/// Outcome: measured vs. theoretical moments plus the ratio histogram.
#[derive(Debug, Clone)]
pub struct RssiErrorReport {
    /// Measured `E[1+ε]` etc.
    pub measured: Summary,
    /// Closed-form mean of `1+ε`.
    pub theory_mean: f64,
    /// Closed-form std of `1+ε`.
    pub theory_std: f64,
    /// Histogram of the ratio `r*/r`.
    pub histogram: Histogram,
}

/// Run E5.
pub fn run(params: &RssiErrorParams) -> RssiErrorReport {
    let model = PathLoss::outdoor_log_distance();
    let exponent = model.ranging_exponent();
    let tx = Dbm(23.0);
    let field = ShadowingField::new(params.seed, params.sigma_db);
    let mut measured = Summary::new();
    let mut histogram = Histogram::new(0.0, 4.0, 40);
    for i in 0..params.samples {
        // One independent link per sample.
        let x = field.sample(i, i + 1_000_000);
        let rx = tx - model.loss(params.distance) - x;
        let est = RangingEstimate::from_rx(tx, rx, &model);
        let ratio = est.distance.0 / params.distance.0;
        measured.push(ratio);
        histogram.record(ratio);
    }
    let stats = ranging_error_stats(params.sigma_db, exponent);
    RssiErrorReport {
        measured,
        theory_mean: stats.mean_ratio,
        theory_std: stats.std_ratio,
        histogram,
    }
}

impl RssiErrorReport {
    /// Markdown table for EXPERIMENTS.md.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(["Quantity", "Measured", "Closed form (eq. 12)"]);
        t.push_row([
            "E[r*/r]".into(),
            format!("{:.4}", self.measured.mean()),
            format!("{:.4}", self.theory_mean),
        ]);
        t.push_row([
            "std[r*/r]".into(),
            format!("{:.4}", self.measured.std_dev()),
            format!("{:.4}", self.theory_std),
        ]);
        t.push_row([
            "min / max".into(),
            format!("{:.3} / {:.3}", self.measured.min(), self.measured.max()),
            "(0, ∞) support".into(),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_moments_match_theory() {
        let report = run(&RssiErrorParams {
            samples: 30_000,
            ..RssiErrorParams::default()
        });
        let rel_mean = (report.measured.mean() - report.theory_mean).abs() / report.theory_mean;
        assert!(rel_mean < 0.03, "mean off by {rel_mean}");
        let rel_std = (report.measured.std_dev() - report.theory_std).abs() / report.theory_std;
        assert!(rel_std < 0.1, "std off by {rel_std}");
    }

    #[test]
    fn median_is_unbiased() {
        // The dB-symmetric shadowing makes the *median* ratio exactly 1
        // even though the mean is biased high (log-normal).
        let report = run(&RssiErrorParams::default());
        // Mode/median proxy: the histogram bin containing ratio 1.0
        // should be near the peak.
        let unit_bin = (1.0 / 4.0 * 40.0) as usize;
        let mode = report.histogram.mode_bin().unwrap();
        assert!(
            (mode as i64 - unit_bin as i64).abs() <= 3,
            "mode bin {mode} vs unit bin {unit_bin}"
        );
        assert!(report.measured.mean() > 1.0, "log-normal mean bias");
    }

    #[test]
    fn zero_shadowing_gives_exact_ranging() {
        let report = run(&RssiErrorParams {
            sigma_db: 0.0,
            samples: 100,
            ..RssiErrorParams::default()
        });
        assert!((report.measured.mean() - 1.0).abs() < 1e-9);
        assert_eq!(report.measured.std_dev(), 0.0);
        assert_eq!(report.theory_mean, 1.0);
    }
}
