//! # ffd2d-baseline — the FST comparator (Chao et al. 2013)
//!
//! The paper's Figs. 3 and 4 compare the proposed ST method against the
//! *bio-inspired proximity discovery and synchronization* scheme of
//! Chao, Lee, Chou & Wei (IEEE Comm. Letters 2013) — referred to as
//! **FST**. FST is a pure mesh firefly protocol:
//!
//! * every device free-runs a Mirollo–Strogatz oscillator and
//!   broadcasts a proximity signal when it fires;
//! * every decoded PS couples into the receiver through the PRC
//!   (eq. (5)) — *all* audible neighbours, the "whole graph for each
//!   node" that §IV criticises;
//! * discovery (neighbour + service) is passive: decoding a PS reveals
//!   the sender and its service class.
//!
//! The implementation reuses the identical substrate as the ST engine
//! (`ffd2d-core`'s [`World`], devices, fast medium, jittered
//! transmissions with age stamps), so every difference in Figs. 3–4 is
//! attributable to the protocol, not the plumbing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fst;

pub use fst::FstProtocol;
