//! The FST mesh firefly protocol.
//!
//! Slot loop identical in structure to the ST engine's sync phase, but
//! with [`CouplingMode::Mesh`] from slot 0 and no tree machinery at all:
//! no convergecasts, no RACH2 handshakes, no fragments. Message cost is
//! therefore pure RACH1 fire traffic — but *convergence* must be won
//! against the full mesh: every firing couples every audible receiver,
//! and as the population grows in the fixed Table-I area, simultaneous
//! fires of partially-synchronized groups collide and the capture
//! margin decides who is heard. This is exactly the scalability wall
//! the paper's Figs. 3–4 report for FST.
//!
//! Like the ST engine, the loop runs in either execution mode of
//! [`EngineMode`]: stepped (every slot materialized) or event-driven (a
//! wake queue of fire slots, staggered-transmission deadlines and
//! convergence probes decides which slots to materialize, and the idle
//! stretches are fast-forwarded). Outcomes are bit-identical either way
//! (`tests/engine_equivalence.rs`).

use rand::Rng;

use ffd2d_chaos::{ChurnEvent, ChurnKind, FaultPlan, FrameFate};
use ffd2d_core::device::{CouplingMode, Device};
use ffd2d_core::outcome::RunOutcome;
use ffd2d_core::scenario::{EngineMode, ScenarioConfig};
use ffd2d_core::world::{FastMedium, World};
use ffd2d_core::NeighborTable;
use ffd2d_osc::prc::Prc;
use ffd2d_osc::predict::{Cursor, TrajectoryCache};
use ffd2d_osc::sync::phase_spread;
use ffd2d_phy::frame::{FrameKind, ProximitySignal};
use ffd2d_radio::units::Dbm;
use ffd2d_sim::counters::Counters;
use ffd2d_sim::deployment::DeviceId;
use ffd2d_sim::event::{DensityWindow, SlotWheel};
use ffd2d_sim::rng::{StreamId, StreamRng};
use ffd2d_sim::time::{Slot, SlotDuration};
use ffd2d_telemetry::{NullRecorder, Recorder};
use ffd2d_trace::{FaultKind, NullSink, ProtoPhase, TraceEvent, TraceSink};

/// Fire transmissions are staggered over this many slots (same value as
/// the ST engine, so the comparison is apples-to-apples).
const FIRE_JITTER: u64 = 8;
const FIRE_RING: usize = 16;
const SYNC_CHECK_INTERVAL: u64 = 16;

/// The mesh firefly baseline.
pub struct FstProtocol;

impl FstProtocol {
    /// Run one trial of the scenario.
    pub fn run(cfg: &ScenarioConfig) -> RunOutcome {
        Self::run_traced(cfg, &mut NullSink)
    }

    /// Run one trial, reporting protocol events to `sink`. Tracing is
    /// strictly observational (no randomness consumed, no state
    /// touched): a traced run's outcome is bit-identical to an untraced
    /// one, and a [`NullSink`] compiles the emission sites out.
    pub fn run_traced<S: TraceSink>(cfg: &ScenarioConfig, sink: &mut S) -> RunOutcome {
        let world = World::new(cfg);
        Self::run_in_traced(&world, sink)
    }

    /// Run one trial in a pre-built world (paired comparisons share the
    /// world with the ST engine).
    pub fn run_in(world: &World) -> RunOutcome {
        Self::run_in_traced(world, &mut NullSink)
    }

    /// [`FstProtocol::run_in`] with protocol-event tracing. The mesh
    /// baseline has no discovery or merge machinery, so the trace is one
    /// long `Sync` phase of fire traffic and oscillator adjustments;
    /// `SlotStats.fragments` stays at `n` (every device is its own
    /// fragment — nothing ever merges).
    ///
    /// An enabled sink consumes per-slot statistics, which requires
    /// materializing every slot — a traced run always executes the
    /// stepped loop, whatever [`ScenarioConfig::engine`] says (same
    /// rule as the ST engine).
    pub fn run_in_traced<S: TraceSink>(world: &World, sink: &mut S) -> RunOutcome {
        Self::run_in_instrumented(world, sink, &mut NullRecorder)
    }

    /// Run one trial with performance telemetry (and no protocol
    /// trace). See [`FstProtocol::run_in_instrumented`].
    pub fn run_instrumented<R: Recorder>(cfg: &ScenarioConfig, rec: &mut R) -> RunOutcome {
        let world = World::new(cfg);
        Self::run_in_instrumented(&world, &mut NullSink, rec)
    }

    /// [`FstProtocol::run_in_traced`] plus a telemetry [`Recorder`].
    /// Telemetry is observational exactly like tracing: it consumes no
    /// randomness and mutates no protocol state, so the outcome is
    /// bit-identical whatever recorder is attached, and a
    /// [`NullRecorder`] compiles every instrumentation site out.
    ///
    /// Engine dispatch keys on the *sink* only (a recorder does not
    /// force the stepped loop): profiling the event-driven calendar
    /// queue is precisely what the recorder is for.
    pub fn run_in_instrumented<S: TraceSink, R: Recorder>(
        world: &World,
        sink: &mut S,
        rec: &mut R,
    ) -> RunOutcome {
        if !S::ENABLED && world.config().engine != EngineMode::Stepped {
            // EventDriven and Adaptive share the wake machinery (see
            // the ST engine's dispatch for the rationale).
            FstEngine::<S, R, true>::new(world, sink, rec).run()
        } else {
            FstEngine::<S, R, false>::new(world, sink, rec).run()
        }
    }
}

/// The mesh slot loop, in either execution mode (`EV` selects the
/// event-driven calendar queue at compile time; see the ST engine for
/// the full design rationale).
struct FstEngine<'w, S: TraceSink, R: Recorder, const EV: bool> {
    world: &'w World,
    sink: &'w mut S,
    /// Performance recorder; every call site is a no-op under
    /// [`NullRecorder`].
    rec: &'w mut R,
    devices: Vec<Device>,
    medium: FastMedium,
    counters: Counters,
    prc: Prc,
    rng: StreamRng,
    fire_queue: Vec<Vec<(DeviceId, u8)>>,
    phases: Vec<f64>,
    /// Reusable per-slot transmission list (no steady-state allocation).
    pending_scratch: Vec<ProximitySignal>,
    tol: f64,
    ground_truth_links: u64,
    // --- Fault injection & churn (dormant when the plan is none) ---
    /// Per-device liveness (all `true` without churn).
    active: Vec<bool>,
    /// Any churn scheduled at all? Gates every liveness check so the
    /// fault-free path stays branch-cheap and bit-identical.
    churned: bool,
    /// Remaining churn events, sorted by slot.
    churn_events: Vec<ChurnEvent>,
    /// Index of the next unapplied churn event.
    next_churn: usize,
    /// Devices whose oscillator period differs from nominal (clock
    /// skew): they cannot use the shared trajectory cache.
    skewed: Vec<bool>,
    /// Key for the stateless frame-fate draws.
    chaos_key: u64,
    /// Slot of the last scheduled fault, if any — the re-convergence
    /// reference point.
    last_fault_slot: Option<u64>,
    // --- Event-driven machinery (dormant when `EV` is false) ---
    /// Candidate wake-up slots (bare slot numbers, coalesced per slot
    /// by the two-tier wheel; spurious entries are harmless).
    wake: SlotWheel,
    /// All slots `< synced_next` are fully processed.
    synced_next: u64,
    /// May the run cut between strategies ([`EngineMode::Adaptive`])?
    adaptive: bool,
    /// Current strategy: `true` ⇒ event-driven windows, `false` ⇒
    /// stepped windows (wake bookkeeping kept, cursor/touched
    /// maintenance shed).
    live_ev: bool,
    /// Sliding-window wake density driving the cutover (adaptive only).
    density: DensityWindow,
    /// Did any oscillator fire naturally in the current slot?
    fired_this_slot: bool,
    /// Devices whose phase may have changed this slot.
    touched: Vec<DeviceId>,
    /// Per-device memoized-trajectory position (`None` ⇒ literal ticks).
    ///
    /// Mesh coupling nudges most phases off the canonical reset values
    /// (every heard pulse applies the PRC), so FST leans on the literal
    /// fallback far more than ST does — the event win here comes mostly
    /// from skipping whole slots, not from O(1) warps.
    cursors: Vec<Option<Cursor>>,
    traj: TrajectoryCache,
}

impl<'w, S: TraceSink, R: Recorder, const EV: bool> FstEngine<'w, S, R, EV> {
    fn new(world: &'w World, sink: &'w mut S, rec: &'w mut R) -> Self {
        let cfg = world.config();
        let n = world.n();
        let seed = cfg.sim.seed;
        let faults = &cfg.faults;
        let churn_events = faults.sorted_churn();
        let skewed: Vec<bool> = (0..n as DeviceId)
            .map(|id| faults.period_for(id, cfg.protocol.period_slots) != cfg.protocol.period_slots)
            .collect();
        let mut phase_rng = StreamRng::new(seed, 0, StreamId::Phases);
        let devices: Vec<Device> = (0..n as DeviceId)
            .map(|id| {
                let mut d = Device::new(
                    id,
                    n,
                    phase_rng.gen_range(0.0..1.0),
                    faults.period_for(id, cfg.protocol.period_slots),
                    cfg.protocol.refractory_slots,
                    world.services()[id as usize],
                );
                d.coupling = CouplingMode::Mesh;
                d
            })
            .collect();
        FstEngine {
            world,
            sink,
            rec,
            devices,
            medium: FastMedium::new(n),
            counters: Counters::new(),
            prc: Prc::from_dissipation(cfg.protocol.dissipation, cfg.protocol.coupling),
            rng: StreamRng::new(seed, 0, StreamId::Protocol),
            fire_queue: vec![Vec::new(); FIRE_RING],
            phases: Vec::with_capacity(n),
            pending_scratch: Vec::new(),
            tol: 1.0 / cfg.protocol.period_slots as f64 + 1e-12,
            ground_truth_links: 0,
            active: faults.initial_active(n),
            churned: !churn_events.is_empty(),
            churn_events,
            next_churn: 0,
            skewed,
            chaos_key: FaultPlan::chaos_key(seed),
            last_fault_slot: faults.last_fault_slot(),
            wake: SlotWheel::new(),
            synced_next: 0,
            adaptive: cfg.engine == EngineMode::Adaptive,
            live_ev: true,
            density: DensityWindow::new(DensityWindow::DEFAULT_WINDOW),
            fired_this_slot: false,
            touched: Vec::new(),
            cursors: vec![None; n],
            traj: TrajectoryCache::new(cfg.protocol.period_slots),
        }
    }

    /// Apply every churn event scheduled for a slot `<= slot`. The mesh
    /// has no tree state, so a leave just silences the device and a
    /// join brings it back with a fresh neighbour table; the full-mesh
    /// coupling re-entrains it without any protocol machinery.
    fn apply_churn(&mut self, slot: Slot) {
        let n = self.devices.len();
        let mut churned: Vec<DeviceId> = Vec::new();
        while self.next_churn < self.churn_events.len()
            && self.churn_events[self.next_churn].slot <= slot.0
        {
            let ev = self.churn_events[self.next_churn];
            self.next_churn += 1;
            churned.push(ev.device);
            self.rec.add("chaos.churn_events", 1);
            let d = ev.device as usize;
            match ev.kind {
                ChurnKind::Leave => {
                    if !self.active[d] {
                        continue;
                    }
                    self.active[d] = false;
                    if S::ENABLED {
                        self.sink.event(&TraceEvent::DeviceLeft {
                            slot: slot.0,
                            device: ev.device,
                            orphaned: 0,
                        });
                    }
                }
                ChurnKind::Join => {
                    if self.active[d] {
                        continue;
                    }
                    self.active[d] = true;
                    self.devices[d].table = NeighborTable::new(n);
                    if EV && self.live_ev {
                        // Stepped windows tick every slot and the
                        // cutover reseed re-predicts the population.
                        self.touched.push(ev.device);
                    }
                    if S::ENABLED {
                        self.sink.event(&TraceEvent::DeviceJoined {
                            slot: slot.0,
                            device: ev.device,
                        });
                    }
                }
            }
        }
        if !churned.is_empty() {
            // Population changed: stale exactly the churned devices'
            // link-state cache rows; everyone else's stay hot.
            self.medium.note_churn_of(&churned);
        }
    }

    /// One materialized slot, under a scoped timer when a recorder
    /// listens. The mesh has no protocol phases, so every slot bills to
    /// the single `engine.slot.sync` key.
    fn slot_body(&mut self, slot: Slot) -> Option<u64> {
        if !R::ENABLED {
            return self.slot_body_inner(slot);
        }
        let t_slot = self.rec.start();
        let probe = self.slot_body_inner(slot);
        self.rec.add("engine.slots_materialized", 1);
        self.rec.stop("engine.slot.sync", t_slot);
        probe
    }

    /// One materialized slot — the body shared by both loops. Returns
    /// `Some(slot)` on convergence.
    fn slot_body_inner(&mut self, slot: Slot) -> Option<u64> {
        let world = self.world;
        let pathloss = world.channel_config().pathloss;
        let tx_power = world.channel_config().tx_power;
        let n = self.devices.len();
        let s = slot.0;

        // Scheduled churn fires before anything else in the slot.
        if self.next_churn < self.churn_events.len() {
            self.apply_churn(slot);
        }

        // Tick and stagger natural fires. Cursor/touched maintenance
        // only pays off when skip-ahead will use it — stepped windows
        // of an adaptive run shed it (and reseed at the next cutover).
        for i in 0..n {
            if self.churned && !self.active[i] {
                continue; // departed devices are frozen
            }
            if self.devices[i].osc.tick() {
                let j = self.rng.gen_range(0..FIRE_JITTER);
                self.fire_queue[(s + j) as usize % FIRE_RING].push((i as DeviceId, j as u8));
                if EV {
                    self.fired_this_slot = true;
                    if self.live_ev {
                        self.touched.push(i as DeviceId);
                    }
                    if j > 0 {
                        // The staggered transmission lands in a future
                        // slot, which must be materialized for the ring
                        // take below to find it.
                        self.push_wake(s + j);
                    }
                }
            } else if EV && self.live_ev {
                self.cursors[i] = self.cursors[i].map(Cursor::next);
            }
        }
        let ring_at = s as usize % FIRE_RING;
        let mut due = core::mem::take(&mut self.fire_queue[ring_at]);
        if !due.is_empty() {
            // The transmission list is reusable scratch, taken and
            // returned with its capacity intact.
            let mut pending = core::mem::take(&mut self.pending_scratch);
            pending.clear();
            pending.extend(
                due.iter()
                    // A device that left after staggering a fire never
                    // transmits it.
                    .filter(|&&(id, _)| !self.churned || self.active[id as usize])
                    .map(|&(id, age)| ProximitySignal {
                        sender: id,
                        service: self.devices[id as usize].service,
                        kind: FrameKind::Fire { fragment: id, age },
                    }),
            );
            let mut absorbed: Vec<(DeviceId, u8)> = Vec::new();
            let mut fault_drops = 0u64;
            let mut fault_dups = 0u64;
            {
                let faults = &world.config().faults;
                let has_frame_faults = faults.has_frame_faults();
                let chaos_key = self.chaos_key;
                let active_mask: Option<&[bool]> = if self.churned {
                    Some(&self.active)
                } else {
                    None
                };
                let devices = &mut self.devices;
                let prc = &self.prc;
                let touched = &mut self.touched;
                let live_ev = self.live_ev;
                self.medium.resolve_instrumented(
                    world,
                    slot,
                    &pending,
                    active_mask,
                    &mut self.counters,
                    &mut *self.sink,
                    &mut *self.rec,
                    |receiver, sig, rx_dbm, sink| {
                        // Frame faults at the engine boundary, after the
                        // decode decision — same placement and keyed
                        // draw as the ST engine, so fates are identical
                        // for identical (slot, sender, receiver).
                        let mut copies = 1u32;
                        if has_frame_faults {
                            match faults.frame_fate(chaos_key, slot.0, sig.sender, receiver) {
                                FrameFate::Drop => {
                                    fault_drops += 1;
                                    if S::ENABLED {
                                        sink.event(&TraceEvent::FaultInjected {
                                            slot: slot.0,
                                            device: receiver,
                                            sender: sig.sender,
                                            kind: FaultKind::FrameDrop,
                                        });
                                    }
                                    return;
                                }
                                FrameFate::Duplicate => {
                                    fault_dups += 1;
                                    if S::ENABLED {
                                        sink.event(&TraceEvent::FaultInjected {
                                            slot: slot.0,
                                            device: receiver,
                                            sender: sig.sender,
                                            kind: FaultKind::FrameDup,
                                        });
                                    }
                                    copies = 2;
                                }
                                FrameFate::Deliver => {}
                            }
                        }
                        for _ in 0..copies {
                            if let FrameKind::Fire { fragment, age } = sig.kind {
                                let dev = &mut devices[receiver as usize];
                                dev.table.observe_fire(
                                    sig.sender,
                                    Dbm(rx_dbm),
                                    sig.service,
                                    fragment,
                                    slot,
                                    &pathloss,
                                    tx_power,
                                );
                                let before = if S::ENABLED || (EV && live_ev) {
                                    dev.osc.phase()
                                } else {
                                    0.0
                                };
                                let fired = dev.hear_fire_delayed(sig.sender, prc, age as u32);
                                if S::ENABLED || (EV && live_ev) {
                                    let after = dev.osc.phase();
                                    if S::ENABLED && (after != before || fired) {
                                        sink.event(&TraceEvent::PhaseAdjust {
                                            slot: slot.0,
                                            device: receiver,
                                            sender: sig.sender,
                                            before,
                                            after,
                                            absorbed: fired,
                                        });
                                    }
                                    if EV && live_ev && (after != before || fired) {
                                        touched.push(receiver);
                                    }
                                }
                                if fired {
                                    absorbed.push((receiver, age));
                                }
                            }
                        }
                    },
                );
            }
            self.counters.add_fault_dropped_frames(fault_drops);
            self.counters.add_fault_dup_frames(fault_dups);
            if fault_drops > 0 {
                self.rec.add("chaos.frames_dropped", fault_drops);
            }
            if fault_dups > 0 {
                self.rec.add("chaos.frames_duplicated", fault_dups);
            }
            for (id, age) in absorbed {
                let j = self.rng.gen_range(1..FIRE_JITTER);
                self.fire_queue[(s + j) as usize % FIRE_RING]
                    .push((id, age.saturating_add(j as u8)));
                if EV {
                    self.push_wake(s + j);
                }
            }
            self.pending_scratch = pending;
        }
        due.clear();
        self.fire_queue[ring_at] = due;

        // Per-slot population summary (tracing only). Departed devices
        // are off the air and excluded from the spread, as in ST.
        if S::ENABLED {
            self.gather_active_phases();
            let discovered: u64 = self
                .devices
                .iter()
                .map(|d| d.table.discovered() as u64)
                .sum();
            let spread = phase_spread(&self.phases);
            self.sink.event(&TraceEvent::SlotStats {
                slot: s,
                fragments: n as u32,
                phase_spread: spread,
                discovered_links: discovered,
                ground_truth_links: self.ground_truth_links,
            });
        }

        if s.is_multiple_of(SYNC_CHECK_INTERVAL) && n > 0 {
            self.gather_active_phases();
            if phase_spread(&self.phases) <= self.tol {
                if S::ENABLED {
                    self.sink.event(&TraceEvent::Converged { slot: s });
                }
                return Some(s);
            }
        }
        None
    }

    /// Phases of the live population, into the reusable scratch.
    fn gather_active_phases(&mut self) {
        self.phases.clear();
        let (churned, active) = (self.churned, &self.active);
        self.phases.extend(
            self.devices
                .iter()
                .enumerate()
                .filter(|(i, _)| !churned || active[*i])
                .map(|(_, d)| d.osc.phase()),
        );
    }

    /// Schedule a wake-up slot, tallying scheduler pressure for an
    /// enabled recorder (a no-op push otherwise). Wake-ups landing on
    /// an already-scheduled slot coalesce inside the wheel.
    #[inline]
    fn push_wake(&mut self, s: u64) {
        self.rec.add("engine.wakeups_scheduled", 1);
        self.wake.push(s);
    }

    /// Flush the wheel's coalesce/stale tallies into the recorder.
    fn flush_wheel_stats(&mut self) {
        let (coalesced, stale) = self.wake.take_stats();
        if coalesced > 0 {
            self.rec.add("engine.coalesced_wakeups", coalesced);
        }
        if stale > 0 {
            self.rec.add("engine.wakeups_stale", stale);
        }
    }

    /// Seed the wake queue: slot 0 (its body runs the unconditional
    /// `s % 16 == 0` convergence probe) plus every device's first
    /// natural fire (`k` ticks to fire ⇒ fires in slot `k - 1`).
    fn schedule_initial(&mut self) {
        self.push_wake(0);
        for i in 0..self.devices.len() {
            let k = u64::from(self.devices[i].osc.ticks_to_next_fire());
            self.push_wake(k - 1);
        }
        // Churn slots must materialize (joins/leaves happen at the top
        // of the slot body).
        for i in 0..self.churn_events.len() {
            let at = self.churn_events[i].slot;
            self.push_wake(at);
        }
    }

    /// Pop the next slot to materialize (see the ST engine — the wheel
    /// already coalesced duplicates, so pops are distinct and strictly
    /// increasing).
    fn next_wake(&mut self, max_slots: u64) -> Option<u64> {
        if R::ENABLED {
            self.flush_wheel_stats();
        }
        let s = self.wake.pop()?;
        debug_assert!(s >= self.synced_next, "wheel popped a processed slot");
        if s >= max_slots {
            return None;
        }
        self.rec.add("engine.wakeups_fired", 1);
        if R::ENABLED {
            self.rec
                .observe("engine.wake_heap_depth", self.wake.pending() as u64);
            self.rec
                .observe("engine.wheel_occupancy", self.wake.in_window() as u64);
        }
        Some(s)
    }

    /// Stepped-window counterpart of [`next_wake`](FstEngine::
    /// next_wake): consume the wheel entry (if any) at exactly slot
    /// `s`, keeping the wheel's clock in lockstep.
    fn claim_wake(&mut self, s: u64) -> bool {
        if R::ENABLED {
            self.flush_wheel_stats();
        }
        let woke = self.wake.claim(s);
        if woke {
            self.rec.add("engine.wakeups_fired", 1);
            if R::ENABLED {
                self.rec
                    .observe("engine.wheel_occupancy", self.wake.in_window() as u64);
            }
        }
        woke
    }

    /// Feed the density tracker after materializing slot `s` and apply
    /// the execution-strategy cutover it decides (adaptive mode only).
    fn update_cutover(&mut self, s: u64, woke: bool) {
        let busy = woke || self.fired_this_slot;
        let stepped = self.density.observe(s, busy);
        if stepped != self.live_ev {
            return;
        }
        self.rec.add("engine.cutover_transitions", 1);
        self.live_ev = !stepped;
        if self.live_ev {
            self.reseed_event_wakes(s);
        }
    }

    /// Entering an event-driven window from a stepped one: drop every
    /// cursor back to the literal-ticking fallback and re-predict each
    /// live oscillator's next fire (probe and jitter wakes kept flowing
    /// into the wheel throughout the stepped window).
    fn reseed_event_wakes(&mut self, s: u64) {
        self.touched.clear();
        for i in 0..self.devices.len() {
            self.cursors[i] = None;
            if self.churned && !self.active[i] {
                continue;
            }
            let k = u64::from(self.devices[i].osc.ticks_to_next_fire());
            self.push_wake(s + k);
        }
    }

    /// Fast-forward every device through the skipped (pure-tick) slots
    /// `[synced_next, s)`.
    fn advance_to(&mut self, s: u64) {
        let ticks = s - self.synced_next;
        if ticks == 0 {
            return;
        }
        let mut warps = 0u64;
        let mut literal = 0u64;
        for i in 0..self.devices.len() {
            // Departed devices are frozen, exactly as in the stepped
            // loop's tick skip.
            if self.churned && !self.active[i] {
                continue;
            }
            let fast = match self.cursors[i] {
                Some(c) => self.traj.advance(c, ticks),
                None => None,
            };
            match fast {
                Some((phase, moved)) => {
                    self.devices[i].osc.warp(phase, ticks);
                    self.cursors[i] = Some(moved);
                    warps += 1;
                }
                None => {
                    self.cursors[i] = None;
                    let fires = self.devices[i].osc.advance_by(ticks);
                    debug_assert_eq!(
                        fires, 0,
                        "device {i} fired inside a skipped window ending at slot {s}"
                    );
                    literal += 1;
                }
            }
        }
        self.synced_next = s;
        if R::ENABLED {
            self.rec.add("engine.slots_skipped", ticks);
            self.rec.add("osc.cursor_warps", warps);
            self.rec.add("osc.literal_advances", literal);
        }
    }

    /// Re-arm the wake queue after materializing slot `s`: re-predict
    /// fires of phase-changed devices and chain the next convergence
    /// probe on the `SYNC_CHECK_INTERVAL` grid.
    fn post_schedule(&mut self, s: u64) {
        while let Some(v) = self.touched.pop() {
            let phase = self.devices[v as usize].osc.phase();
            // Clock-skewed devices cannot use the nominal-period
            // trajectory cache; they tick literally.
            let cur = if self.skewed[v as usize] {
                None
            } else {
                self.traj.cursor_for_start(phase)
            };
            self.cursors[v as usize] = cur;
            let k = match cur {
                Some(c) => {
                    self.rec.add("osc.cursor_derived", 1);
                    u64::from(self.traj.ticks_to_fire(c))
                }
                None => {
                    self.rec.add("osc.cursor_fallback", 1);
                    u64::from(self.devices[v as usize].osc.ticks_to_next_fire())
                }
            };
            self.push_wake(s + k);
        }
        self.push_wake(s + (SYNC_CHECK_INTERVAL - s % SYNC_CHECK_INTERVAL));
    }

    fn run(mut self) -> RunOutcome {
        let t_run = self.rec.start();
        let world = self.world;
        let n = self.devices.len();
        self.ground_truth_links = if S::ENABLED {
            2 * world.proximity_graph().m() as u64
        } else {
            0
        };
        let mut convergence: Option<u64> = None;
        let mut reconvergence: Option<u64> = None;
        let mut last_slot = 0u64;
        if S::ENABLED {
            self.sink.event(&TraceEvent::PhaseEnter {
                slot: 0,
                phase: ProtoPhase::Sync,
            });
        }

        // As in the ST engine: fault-free runs stop at the first
        // successful probe; faulted runs continue until a probe succeeds
        // after the last scheduled fault.
        let last_fault = self.last_fault_slot;
        let max_slots = world.config().sim.max_slots.0;
        if EV {
            self.schedule_initial();
            loop {
                // Acquire the next slot under the current strategy
                // (see the ST engine's loop for the rationale).
                let (s, woke) = if self.live_ev {
                    match self.next_wake(max_slots) {
                        Some(s) => (s, true),
                        None => break,
                    }
                } else {
                    let s = self.synced_next;
                    if s >= max_slots {
                        break;
                    }
                    (s, self.claim_wake(s))
                };
                self.advance_to(s);
                last_slot = s;
                self.fired_this_slot = false;
                let probe = self.slot_body(Slot(s));
                self.synced_next = s + 1;
                if let Some(c) = probe {
                    if convergence.is_none() {
                        convergence = Some(c);
                    }
                    match last_fault {
                        None => break,
                        Some(l) if c > l => {
                            reconvergence = Some(c - l);
                            break;
                        }
                        _ => {}
                    }
                }
                self.post_schedule(s);
                if self.adaptive {
                    self.update_cutover(s, woke);
                }
            }
        } else {
            for s in 0..max_slots {
                last_slot = s;
                let probe = self.slot_body(Slot(s));
                if let Some(c) = probe {
                    if convergence.is_none() {
                        convergence = Some(c);
                    }
                    match last_fault {
                        None => break,
                        Some(l) if c > l => {
                            reconvergence = Some(c - l);
                            break;
                        }
                        _ => {}
                    }
                }
            }
        }

        if S::ENABLED {
            self.sink.event(&TraceEvent::RunEnd {
                slot: last_slot,
                converged: convergence.is_some(),
            });
            self.sink.finish();
        }
        self.rec.stop("engine.run_ns", t_run);

        let discovered_links: u64 = self
            .devices
            .iter()
            .map(|d| d.table.discovered() as u64)
            .sum();
        let service_matches: u64 = self
            .devices
            .iter()
            .map(|d| d.table.service_matches(d.service).len() as u64)
            .sum();
        RunOutcome {
            convergence_time: convergence.map(SlotDuration),
            counters: self.counters,
            tree_edges: Vec::new(),
            merge_rounds: 0,
            discovered_links,
            ground_truth_links: 2 * world.proximity_graph().m() as u64,
            service_matches,
            n_devices: n,
            reconvergence_time: reconvergence.map(SlotDuration),
            // The mesh holds no tree, so leaves never orphan fragments.
            orphaned_fragments: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffd2d_core::StProtocol;

    fn cfg(n: usize, seed: u64) -> ScenarioConfig {
        ScenarioConfig::table1(n)
            .seeded(seed)
            .with_max_slots(SlotDuration(120_000))
    }

    #[test]
    fn small_mesh_converges() {
        let out = FstProtocol::run(&cfg(10, 1).ideal_channel());
        assert!(out.converged(), "{out:?}");
        assert!(out.tree_edges.is_empty());
        assert_eq!(out.merge_rounds, 0);
    }

    #[test]
    fn table1_scenario_converges() {
        let out = FstProtocol::run(&cfg(50, 2));
        assert!(out.converged(), "{out:?}");
    }

    #[test]
    fn messages_are_pure_fire_traffic() {
        let out = FstProtocol::run(&cfg(20, 3));
        assert_eq!(out.counters.rach2_tx, 0);
        assert_eq!(out.counters.unicast_tx, 0);
        assert!(out.counters.rach1_tx > 0);
        assert_eq!(out.messages(), out.counters.rach1_tx);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = FstProtocol::run(&cfg(15, 4));
        let b = FstProtocol::run(&cfg(15, 4));
        assert_eq!(a, b);
    }

    #[test]
    fn engine_modes_agree() {
        for seed in [1, 4, 9] {
            let stepped = FstProtocol::run(&cfg(25, seed).with_engine(EngineMode::Stepped));
            let event = FstProtocol::run(&cfg(25, seed).with_engine(EngineMode::EventDriven));
            assert_eq!(stepped, event, "seed {seed}");
        }
    }

    #[test]
    fn discovery_is_passive_and_bounded_by_convergence() {
        // FST discovers only while it runs: the mesh often synchronizes
        // within a few periods, so passive discovery stays partial —
        // one of the trade-offs the ST method's explicit discovery
        // phase avoids.
        let out = FstProtocol::run(&cfg(30, 5));
        let c = out.discovery_completeness();
        assert!(c > 0.3, "completeness {c}");
        assert!(out.service_matches > 0);
    }

    #[test]
    fn fst_beats_st_on_messages_at_small_n() {
        // Fig. 4's left side: below the crossover the tree machinery
        // costs more messages than plain mesh firing.
        let scenario = cfg(20, 6);
        let world = World::new(&scenario);
        let fst = FstProtocol::run_in(&world);
        let st = StProtocol::run_in(&world);
        assert!(fst.converged() && st.converged());
        assert!(
            fst.messages() < st.messages(),
            "fst {} vs st {}",
            fst.messages(),
            st.messages()
        );
    }
}
