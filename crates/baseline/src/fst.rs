//! The FST mesh firefly protocol.
//!
//! Slot loop identical in structure to the ST engine's sync phase, but
//! with [`CouplingMode::Mesh`] from slot 0 and no tree machinery at all:
//! no convergecasts, no RACH2 handshakes, no fragments. Message cost is
//! therefore pure RACH1 fire traffic — but *convergence* must be won
//! against the full mesh: every firing couples every audible receiver,
//! and as the population grows in the fixed Table-I area, simultaneous
//! fires of partially-synchronized groups collide and the capture
//! margin decides who is heard. This is exactly the scalability wall
//! the paper's Figs. 3–4 report for FST.

use rand::Rng;

use ffd2d_core::device::{CouplingMode, Device};
use ffd2d_core::outcome::RunOutcome;
use ffd2d_core::scenario::ScenarioConfig;
use ffd2d_core::world::{FastMedium, World};
use ffd2d_osc::prc::Prc;
use ffd2d_osc::sync::phase_spread;
use ffd2d_phy::frame::{FrameKind, ProximitySignal};
use ffd2d_radio::units::Dbm;
use ffd2d_sim::counters::Counters;
use ffd2d_sim::deployment::DeviceId;
use ffd2d_sim::rng::{StreamId, StreamRng};
use ffd2d_sim::time::{Slot, SlotDuration};
use ffd2d_trace::{NullSink, ProtoPhase, TraceEvent, TraceSink};

/// Fire transmissions are staggered over this many slots (same value as
/// the ST engine, so the comparison is apples-to-apples).
const FIRE_JITTER: u64 = 8;
const FIRE_RING: usize = 16;
const SYNC_CHECK_INTERVAL: u64 = 16;

/// The mesh firefly baseline.
pub struct FstProtocol;

impl FstProtocol {
    /// Run one trial of the scenario.
    pub fn run(cfg: &ScenarioConfig) -> RunOutcome {
        Self::run_traced(cfg, &mut NullSink)
    }

    /// Run one trial, reporting protocol events to `sink`. Tracing is
    /// strictly observational (no randomness consumed, no state
    /// touched): a traced run's outcome is bit-identical to an untraced
    /// one, and a [`NullSink`] compiles the emission sites out.
    pub fn run_traced<S: TraceSink>(cfg: &ScenarioConfig, sink: &mut S) -> RunOutcome {
        let world = World::new(cfg);
        Self::run_in_traced(&world, sink)
    }

    /// Run one trial in a pre-built world (paired comparisons share the
    /// world with the ST engine).
    pub fn run_in(world: &World) -> RunOutcome {
        Self::run_in_traced(world, &mut NullSink)
    }

    /// [`FstProtocol::run_in`] with protocol-event tracing. The mesh
    /// baseline has no discovery or merge machinery, so the trace is one
    /// long `Sync` phase of fire traffic and oscillator adjustments;
    /// `SlotStats.fragments` stays at `n` (every device is its own
    /// fragment — nothing ever merges).
    pub fn run_in_traced<S: TraceSink>(world: &World, sink: &mut S) -> RunOutcome {
        let cfg = world.config();
        let n = world.n();
        let seed = cfg.sim.seed;
        let prc = Prc::from_dissipation(cfg.protocol.dissipation, cfg.protocol.coupling);
        let mut rng = StreamRng::new(seed, 0, StreamId::Protocol);
        let mut phase_rng = StreamRng::new(seed, 0, StreamId::Phases);
        let mut devices: Vec<Device> = (0..n as DeviceId)
            .map(|id| {
                let mut d = Device::new(
                    id,
                    n,
                    phase_rng.gen_range(0.0..1.0),
                    cfg.protocol.period_slots,
                    cfg.protocol.refractory_slots,
                    world.services()[id as usize],
                );
                d.coupling = CouplingMode::Mesh;
                d
            })
            .collect();

        let mut medium = FastMedium::new(n);
        let mut counters = Counters::new();
        let mut fire_queue: Vec<Vec<(DeviceId, u8)>> = vec![Vec::new(); FIRE_RING];
        let mut phases = Vec::with_capacity(n);
        let pathloss = cfg.channel.pathloss;
        let tx_power = cfg.channel.tx_power;
        let tol = 1.0 / cfg.protocol.period_slots as f64 + 1e-12;
        let mut convergence: Option<u64> = None;
        let mut last_slot = 0u64;
        let ground_truth_links = if S::ENABLED {
            2 * world.proximity_graph().m() as u64
        } else {
            0
        };
        if S::ENABLED {
            sink.event(&TraceEvent::PhaseEnter {
                slot: 0,
                phase: ProtoPhase::Sync,
            });
        }

        for s in 0..cfg.sim.max_slots.0 {
            let slot = Slot(s);
            last_slot = s;
            // Tick and stagger natural fires.
            for (i, dev) in devices.iter_mut().enumerate() {
                if dev.osc.tick() {
                    let j = rng.gen_range(0..FIRE_JITTER);
                    fire_queue[(s + j) as usize % FIRE_RING].push((i as DeviceId, j as u8));
                }
            }
            let due = core::mem::take(&mut fire_queue[s as usize % FIRE_RING]);
            if !due.is_empty() {
                let pending: Vec<ProximitySignal> = due
                    .iter()
                    .map(|&(id, age)| ProximitySignal {
                        sender: id,
                        service: devices[id as usize].service,
                        kind: FrameKind::Fire { fragment: id, age },
                    })
                    .collect();
                let mut absorbed: Vec<(DeviceId, u8)> = Vec::new();
                medium.resolve_traced(
                    world,
                    slot,
                    &pending,
                    &mut counters,
                    &mut *sink,
                    |receiver, sig, rx_dbm, sink| {
                        if let FrameKind::Fire { fragment, age } = sig.kind {
                            let dev = &mut devices[receiver as usize];
                            dev.table.observe_fire(
                                sig.sender,
                                Dbm(rx_dbm),
                                sig.service,
                                fragment,
                                slot,
                                &pathloss,
                                tx_power,
                            );
                            let before = if S::ENABLED { dev.osc.phase() } else { 0.0 };
                            let fired = dev.hear_fire_delayed(sig.sender, &prc, age as u32);
                            if S::ENABLED {
                                let after = dev.osc.phase();
                                if after != before || fired {
                                    sink.event(&TraceEvent::PhaseAdjust {
                                        slot: slot.0,
                                        device: receiver,
                                        sender: sig.sender,
                                        before,
                                        after,
                                        absorbed: fired,
                                    });
                                }
                            }
                            if fired {
                                absorbed.push((receiver, age));
                            }
                        }
                    },
                );
                for (id, age) in absorbed {
                    let j = rng.gen_range(1..FIRE_JITTER);
                    fire_queue[(s + j) as usize % FIRE_RING]
                        .push((id, age.saturating_add(j as u8)));
                }
            }

            // Per-slot population summary (tracing only).
            if S::ENABLED {
                phases.clear();
                phases.extend(devices.iter().map(|d| d.osc.phase()));
                let discovered: u64 = devices.iter().map(|d| d.table.discovered() as u64).sum();
                sink.event(&TraceEvent::SlotStats {
                    slot: s,
                    fragments: n as u32,
                    phase_spread: phase_spread(&phases),
                    discovered_links: discovered,
                    ground_truth_links,
                });
            }

            if s % SYNC_CHECK_INTERVAL == 0 && n > 0 {
                phases.clear();
                phases.extend(devices.iter().map(|d| d.osc.phase()));
                if phase_spread(&phases) <= tol {
                    convergence = Some(s);
                    if S::ENABLED {
                        sink.event(&TraceEvent::Converged { slot: s });
                    }
                    break;
                }
            }
        }

        if S::ENABLED {
            sink.event(&TraceEvent::RunEnd {
                slot: last_slot,
                converged: convergence.is_some(),
            });
            sink.finish();
        }

        let discovered_links: u64 = devices.iter().map(|d| d.table.discovered() as u64).sum();
        let service_matches: u64 = devices
            .iter()
            .map(|d| d.table.service_matches(d.service).len() as u64)
            .sum();
        RunOutcome {
            convergence_time: convergence.map(SlotDuration),
            counters,
            tree_edges: Vec::new(),
            merge_rounds: 0,
            discovered_links,
            ground_truth_links: 2 * world.proximity_graph().m() as u64,
            service_matches,
            n_devices: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffd2d_core::StProtocol;

    fn cfg(n: usize, seed: u64) -> ScenarioConfig {
        ScenarioConfig::table1(n)
            .seeded(seed)
            .with_max_slots(SlotDuration(120_000))
    }

    #[test]
    fn small_mesh_converges() {
        let out = FstProtocol::run(&cfg(10, 1).ideal_channel());
        assert!(out.converged(), "{out:?}");
        assert!(out.tree_edges.is_empty());
        assert_eq!(out.merge_rounds, 0);
    }

    #[test]
    fn table1_scenario_converges() {
        let out = FstProtocol::run(&cfg(50, 2));
        assert!(out.converged(), "{out:?}");
    }

    #[test]
    fn messages_are_pure_fire_traffic() {
        let out = FstProtocol::run(&cfg(20, 3));
        assert_eq!(out.counters.rach2_tx, 0);
        assert_eq!(out.counters.unicast_tx, 0);
        assert!(out.counters.rach1_tx > 0);
        assert_eq!(out.messages(), out.counters.rach1_tx);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = FstProtocol::run(&cfg(15, 4));
        let b = FstProtocol::run(&cfg(15, 4));
        assert_eq!(a, b);
    }

    #[test]
    fn discovery_is_passive_and_bounded_by_convergence() {
        // FST discovers only while it runs: the mesh often synchronizes
        // within a few periods, so passive discovery stays partial —
        // one of the trade-offs the ST method's explicit discovery
        // phase avoids.
        let out = FstProtocol::run(&cfg(30, 5));
        let c = out.discovery_completeness();
        assert!(c > 0.3, "completeness {c}");
        assert!(out.service_matches > 0);
    }

    #[test]
    fn fst_beats_st_on_messages_at_small_n() {
        // Fig. 4's left side: below the crossover the tree machinery
        // costs more messages than plain mesh firing.
        let scenario = cfg(20, 6);
        let world = World::new(&scenario);
        let fst = FstProtocol::run_in(&world);
        let st = StProtocol::run_in(&world);
        assert!(fst.converged() && st.converged());
        assert!(
            fst.messages() < st.messages(),
            "fst {} vs st {}",
            fst.messages(),
            st.messages()
        );
    }
}
