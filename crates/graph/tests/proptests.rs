//! Property-based tests for the graph substrate.

use proptest::prelude::*;

use ffd2d_graph::adjacency::{Edge, WeightedGraph};
use ffd2d_graph::connectivity::{components, is_connected};
use ffd2d_graph::fragments::FragmentForest;
use ffd2d_graph::mst::{boruvka_max_st, kruskal_max_st, prim_max_st};
use ffd2d_graph::tree::{is_spanning_tree, RootedTree};
use ffd2d_graph::unionfind::UnionFind;
use ffd2d_graph::weight::W;

/// Random simple graph as an edge list with distinct weights.
fn graphs(max_n: usize) -> impl Strategy<Value = WeightedGraph> {
    (3..max_n).prop_flat_map(|n| {
        let all_pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|a| ((a + 1)..n as u32).map(move |b| (a, b)))
            .collect();
        let m = all_pairs.len();
        proptest::collection::vec(any::<bool>(), m).prop_map(move |mask| {
            let mut g = WeightedGraph::new(n);
            let mut w = -120.0;
            for (&(a, b), &keep) in all_pairs.iter().zip(&mask) {
                if keep {
                    // Strictly increasing weights → all distinct.
                    w += 0.25;
                    g.add_edge(a, b, W::new(w));
                }
            }
            g
        })
    })
}

proptest! {
    /// Kruskal, Prim and Borůvka agree on arbitrary graphs with
    /// distinct weights (the maximum spanning forest is unique).
    #[test]
    fn mst_algorithms_agree(g in graphs(24)) {
        let k = kruskal_max_st(&g);
        let p = prim_max_st(&g);
        let (b, rounds) = boruvka_max_st(&g);
        prop_assert_eq!(&k.edges, &p.edges);
        prop_assert_eq!(&k.edges, &b.edges);
        prop_assert!(!rounds.is_empty());
        // Forest size matches component structure.
        let (_, comps) = components(&g);
        prop_assert_eq!(k.tree_count, comps);
        prop_assert_eq!(k.edges.len(), g.n() - comps);
    }

    /// The max spanning forest dominates every other spanning forest
    /// built greedily from a shuffled edge order (exchange property).
    #[test]
    fn max_forest_dominates_greedy_random(g in graphs(20), shuffle_seed in any::<u64>()) {
        let best = kruskal_max_st(&g).total_weight().get();
        let mut edges = g.edges();
        // Cheap deterministic shuffle.
        let mut s = shuffle_seed | 1;
        for i in (1..edges.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            edges.swap(i, j);
        }
        let mut uf = UnionFind::new(g.n());
        let total: f64 = edges
            .into_iter()
            .filter(|e| uf.union(e.u, e.v))
            .map(|e| e.w.get())
            .sum();
        prop_assert!(best >= total - 1e-9);
    }

    /// Union–find maintains the partition invariant under arbitrary
    /// union sequences.
    #[test]
    fn union_find_partition(n in 2usize..64, ops in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..200)) {
        let mut uf = UnionFind::new(n);
        let mut merges = 0;
        for (a, b) in ops {
            let (a, b) = (a % n as u32, b % n as u32);
            if uf.union(a, b) {
                merges += 1;
            }
            prop_assert!(uf.connected(a, b));
        }
        prop_assert_eq!(uf.set_count(), n - merges);
        // find is idempotent and canonical.
        for v in 0..n as u32 {
            let r = uf.find(v);
            prop_assert_eq!(uf.find(r), r);
        }
    }

    /// A tree built from any connected graph's MST is a valid rooted
    /// tree from every root, with consistent depths and subtree sizes.
    #[test]
    fn rooted_tree_invariants(g in graphs(16)) {
        prop_assume!(is_connected(&g) && g.n() >= 2);
        let f = kruskal_max_st(&g);
        prop_assert!(is_spanning_tree(g.n(), &f.edges));
        for root in 0..g.n() as u32 {
            let t = RootedTree::from_edges(g.n(), root, &f.edges).unwrap();
            let sizes = t.subtree_sizes();
            prop_assert_eq!(sizes[root as usize] as usize, g.n());
            for v in 0..g.n() as u32 {
                // Path to root has length depth+1 and ends at the root.
                let path = t.path_to_root(v);
                prop_assert_eq!(path.len() as u32, t.depth(v) + 1);
                prop_assert_eq!(*path.last().unwrap(), root);
                // Parent/child relations are mutually consistent.
                if let Some(p) = t.parent(v) {
                    prop_assert!(t.children(p).contains(&v));
                    prop_assert_eq!(t.depth(v), t.depth(p) + 1);
                }
            }
        }
    }

    /// FragmentForest merge sequences grow one tree edge per merge and
    /// never cycle; the head is always a member of its fragment.
    #[test]
    fn fragment_forest_invariants(n in 2usize..32, picks in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..80)) {
        let mut f = FragmentForest::new(n);
        for (i, (a, b)) in picks.into_iter().enumerate() {
            let (a, b) = (a % n as u32, b % n as u32);
            if a == b { continue; }
            let merged = f.merge(Edge::new(a, b, W::new(i as f64)));
            let same_after = f.fragment_of(a) == f.fragment_of(b);
            prop_assert!(same_after, "endpoints must share a fragment after merge");
            let _ = merged;
        }
        prop_assert_eq!(f.tree_edges().len(), n - f.fragment_count());
        for v in 0..n as u32 {
            let head = f.head_of(v);
            prop_assert!(f.members_of(v).contains(&head));
        }
    }
}
