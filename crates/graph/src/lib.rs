//! # ffd2d-graph — graph substrate for proximity networks
//!
//! §IV of the paper models the D2D network as a weighted graph
//! `G(V, E)`: vertices are devices, edges are links whose weight is
//! "directly proportional to PS strength observed by nodes". The
//! proposed Algorithm 1 builds a spanning structure "keeping in mind GHS
//! and Borůvka's algorithm", selecting **heavy** (strongest) edges — a
//! *maximum*-weight spanning tree, so that synchronization pulses travel
//! over the most reliable links.
//!
//! This crate provides everything the protocol layers need:
//!
//! * [`weight`] — totally-ordered `f64` edge weights (graphs never
//!   contain NaN weights; the order is asserted, not assumed).
//! * [`adjacency`] — the [`adjacency::WeightedGraph`] representation
//!   (compact adjacency lists, `u32` vertex ids).
//! * [`unionfind`] — union–find with path halving + union by rank.
//! * [`mst`] — sequential maximum-spanning-tree algorithms: Kruskal,
//!   Prim, and Borůvka with per-round statistics (the round structure is
//!   what the distributed protocol's message complexity follows).
//! * [`fragments`] — GHS-style fragment bookkeeping used by the
//!   distributed spanning-tree protocol in `ffd2d-core`: fragment
//!   membership, heads, best-outgoing-edge queries and merge operations.
//! * [`spatial`] — uniform spatial-grid neighbor index: O(n) bucketing
//!   of device positions into audibility-radius cells, so the collision
//!   medium and proximity-graph construction query candidate neighbours
//!   in O(occupancy) instead of scanning a dense `n × n` matrix.
//! * [`tree`] — rooted-tree utilities (parent arrays, BFS orders,
//!   depths, spanning-tree validation).
//! * [`connectivity`] — connected components.
//!
//! All algorithms here are deterministic; ties between equal weights are
//! broken by the smaller `(min endpoint, max endpoint)` pair so that
//! every implementation produces the *same* spanning forest on the same
//! input — which the test-suite exploits by cross-checking Kruskal,
//! Prim and Borůvka against each other.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod connectivity;
pub mod fragments;
pub mod mst;
pub mod spatial;
pub mod tree;
pub mod unionfind;
pub mod weight;

pub use adjacency::{Edge, WeightedGraph};
pub use connectivity::components;
pub use fragments::FragmentForest;
pub use mst::{boruvka_max_st, kruskal_max_st, prim_max_st, SpanningForest};
pub use spatial::SpatialGrid;
pub use tree::RootedTree;
pub use unionfind::UnionFind;
pub use weight::W;

/// Vertex identifier (dense `0..n`, matching `ffd2d_sim` device ids).
pub type VertexId = u32;
