//! Union–find (disjoint-set forest).
//!
//! Used by Kruskal's algorithm and by the fragment bookkeeping of the
//! distributed spanning-tree protocol. Implements path halving and
//! union by rank — effectively O(α(n)) per operation.

/// Disjoint-set forest over dense `0..n` elements.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure tracks no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    #[inline]
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Non-mutating find (no compression) — usable with `&self`.
    pub fn find_const(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Merge the sets containing `a` and `b`. Returns `true` if they
    /// were distinct (a merge happened).
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            core::cmp::Ordering::Less => (rb, ra),
            core::cmp::Ordering::Greater => (ra, rb),
            core::cmp::Ordering::Equal => {
                self.rank[ra as usize] += 1;
                (ra, rb)
            }
        };
        self.parent[lo as usize] = hi;
        self.sets -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_at_start() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        assert_eq!(uf.len(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert_eq!(uf.set_count(), 2);
        assert!(!uf.union(1, 0), "already merged");
        assert!(uf.union(0, 3));
        assert_eq!(uf.set_count(), 1);
        assert!(uf.connected(1, 2));
    }

    #[test]
    fn find_const_agrees_with_find() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find_const(i), root);
        }
    }

    #[test]
    fn long_chain_stays_fast_and_correct() {
        let n = 100_000;
        let mut uf = UnionFind::new(n);
        for i in (1..n as u32).rev() {
            uf.union(i, i - 1);
        }
        assert_eq!(uf.set_count(), 1);
        assert!(uf.connected(0, (n - 1) as u32));
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
    }
}
