//! Maximum-weight spanning forests.
//!
//! The paper's Algorithm 1 grows a spanning structure by repeatedly
//! "selecting heavy edges" — the distributed classic of Gallager,
//! Humblet & Spira (GHS), which is Borůvka's algorithm run by the
//! fragments themselves. To validate the distributed protocol, this
//! module implements three *sequential* maximum-spanning-tree
//! algorithms:
//!
//! * [`kruskal_max_st`] — sort all edges heavy-first, union–find.
//! * [`prim_max_st`] — heap-based growth from vertex 0 of each
//!   component.
//! * [`boruvka_max_st`] — per-fragment best-edge rounds; also reports
//!   per-round statistics, since the distributed protocol's running time
//!   and message complexity follow the Borůvka round structure
//!   (`⌈log₂ n⌉` rounds on any connected graph).
//!
//! With distinct edge weights the maximum spanning forest is unique, so
//! all three must return identical edge sets — a property the tests
//! check on random graphs. PS-strength weights are continuous random
//! variables, so distinctness holds almost surely in every simulation;
//! ties are nonetheless broken deterministically (see
//! [`Edge::heavy_key`]).

use serde::{Deserialize, Serialize};

use crate::adjacency::{Edge, WeightedGraph};
use crate::unionfind::UnionFind;
use crate::weight::W;
use crate::VertexId;

/// A spanning forest: the chosen edges plus bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanningForest {
    /// Chosen edges in canonical sorted order.
    pub edges: Vec<Edge>,
    /// Number of trees in the forest (connected graph → 1).
    pub tree_count: usize,
}

impl SpanningForest {
    fn from_edges(mut edges: Vec<Edge>, n: usize) -> Self {
        edges.sort();
        let tree_count = n - edges.len();
        SpanningForest { edges, tree_count }
    }

    /// Sum of chosen edge weights.
    pub fn total_weight(&self) -> W {
        self.edges.iter().map(|e| e.w).sum()
    }

    /// True if the forest spans a connected graph as a single tree.
    pub fn is_single_tree(&self) -> bool {
        self.tree_count == 1
    }
}

/// Kruskal's algorithm, heaviest edge first.
pub fn kruskal_max_st(g: &WeightedGraph) -> SpanningForest {
    let mut edges = g.edges();
    // Heavy first; deterministic tie-break on endpoints.
    edges.sort_by_key(|e| std::cmp::Reverse(e.heavy_key()));
    let mut uf = UnionFind::new(g.n());
    let mut chosen = Vec::with_capacity(g.n().saturating_sub(1));
    for e in edges {
        if uf.union(e.u, e.v) {
            chosen.push(e);
            if chosen.len() + 1 == g.n() {
                break;
            }
        }
    }
    SpanningForest::from_edges(chosen, g.n())
}

/// Prim's algorithm (restarted per component), maximising weight.
pub fn prim_max_st(g: &WeightedGraph) -> SpanningForest {
    use std::collections::BinaryHeap;
    let n = g.n();
    let mut in_tree = vec![false; n];
    let mut chosen = Vec::with_capacity(n.saturating_sub(1));
    let mut heap: BinaryHeap<(W, core::cmp::Reverse<(VertexId, VertexId)>)> = BinaryHeap::new();

    for start in 0..n as VertexId {
        if in_tree[start as usize] {
            continue;
        }
        in_tree[start as usize] = true;
        for &(u, w) in g.neighbors(start) {
            heap.push((w, core::cmp::Reverse((start.min(u), start.max(u)))));
        }
        while let Some((w, core::cmp::Reverse((a, b)))) = heap.pop() {
            // One endpoint is inside; identify the outside one (if any).
            let outside = match (in_tree[a as usize], in_tree[b as usize]) {
                (true, false) => b,
                (false, true) => a,
                _ => continue,
            };
            chosen.push(Edge::new(a, b, w));
            in_tree[outside as usize] = true;
            for &(u, uw) in g.neighbors(outside) {
                if !in_tree[u as usize] {
                    heap.push((uw, core::cmp::Reverse((outside.min(u), outside.max(u)))));
                }
            }
        }
    }
    SpanningForest::from_edges(chosen, n)
}

/// Statistics of one Borůvka round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoruvkaRound {
    /// Fragments alive at the start of the round.
    pub fragments_before: usize,
    /// Fragments alive after the round's merges.
    pub fragments_after: usize,
    /// Edges added in this round.
    pub edges_added: usize,
}

/// Borůvka's algorithm, maximising weight, with per-round statistics.
pub fn boruvka_max_st(g: &WeightedGraph) -> (SpanningForest, Vec<BoruvkaRound>) {
    let n = g.n();
    let mut uf = UnionFind::new(n);
    let mut chosen: Vec<Edge> = Vec::with_capacity(n.saturating_sub(1));
    let mut rounds = Vec::new();
    let all_edges = g.edges();

    loop {
        let before = uf.set_count();
        // Best outgoing edge per fragment.
        let mut best: Vec<Option<Edge>> = vec![None; n];
        for &e in &all_edges {
            let (ru, rv) = (uf.find(e.u), uf.find(e.v));
            if ru == rv {
                continue;
            }
            for r in [ru, rv] {
                let slot = &mut best[r as usize];
                if slot.is_none_or(|cur| e.heavy_key() > cur.heavy_key()) {
                    *slot = Some(e);
                }
            }
        }
        let mut added = 0;
        for e in best.into_iter().flatten() {
            if uf.union(e.u, e.v) {
                chosen.push(e);
                added += 1;
            }
        }
        rounds.push(BoruvkaRound {
            fragments_before: before,
            fragments_after: uf.set_count(),
            edges_added: added,
        });
        if added == 0 {
            break;
        }
    }
    (SpanningForest::from_edges(chosen, n), rounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(x: f64) -> W {
        W::new(x)
    }

    /// Small graph with a known maximum spanning tree.
    fn known_graph() -> WeightedGraph {
        // 0-1:4  0-2:3  1-2:5  1-3:2  2-3:6
        // Max ST: {2-3:6, 1-2:5, 0-1:4} total 15.
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, w(4.0));
        g.add_edge(0, 2, w(3.0));
        g.add_edge(1, 2, w(5.0));
        g.add_edge(1, 3, w(2.0));
        g.add_edge(2, 3, w(6.0));
        g
    }

    fn random_graph(n: usize, p: f64, seed: u64) -> WeightedGraph {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = ffd2d_sim::rng::Xoshiro256StarStar::seed_from_u64(seed);
        let mut g = WeightedGraph::new(n);
        for a in 0..n as VertexId {
            for b in (a + 1)..n as VertexId {
                if rng.gen_bool(p) {
                    g.add_edge(a, b, w(rng.gen_range(-120.0..0.0)));
                }
            }
        }
        g
    }

    #[test]
    fn kruskal_on_known_graph() {
        let f = kruskal_max_st(&known_graph());
        assert!(f.is_single_tree());
        assert_eq!(f.edges.len(), 3);
        assert_eq!(f.total_weight(), w(15.0));
    }

    #[test]
    fn prim_on_known_graph() {
        let f = prim_max_st(&known_graph());
        assert_eq!(f.total_weight(), w(15.0));
        assert_eq!(f.edges, kruskal_max_st(&known_graph()).edges);
    }

    #[test]
    fn boruvka_on_known_graph() {
        let (f, rounds) = boruvka_max_st(&known_graph());
        assert_eq!(f.total_weight(), w(15.0));
        assert!(!rounds.is_empty());
        assert_eq!(rounds.last().unwrap().edges_added, 0);
    }

    #[test]
    fn all_three_agree_on_random_graphs() {
        for seed in 0..10 {
            let g = random_graph(40, 0.3, seed);
            let k = kruskal_max_st(&g);
            let p = prim_max_st(&g);
            let (b, _) = boruvka_max_st(&g);
            assert_eq!(k.edges, p.edges, "seed {seed}: kruskal vs prim");
            assert_eq!(k.edges, b.edges, "seed {seed}: kruskal vs boruvka");
        }
    }

    #[test]
    fn forest_on_disconnected_graph() {
        // Two disjoint triangles.
        let mut g = WeightedGraph::new(6);
        g.add_edge(0, 1, w(1.0));
        g.add_edge(1, 2, w(2.0));
        g.add_edge(0, 2, w(3.0));
        g.add_edge(3, 4, w(1.0));
        g.add_edge(4, 5, w(2.0));
        g.add_edge(3, 5, w(3.0));
        for f in [kruskal_max_st(&g), prim_max_st(&g), boruvka_max_st(&g).0] {
            assert_eq!(f.tree_count, 2);
            assert_eq!(f.edges.len(), 4);
            assert!(!f.is_single_tree());
        }
    }

    #[test]
    fn boruvka_rounds_are_logarithmic() {
        // Complete graph on 64 vertices: fragments at least halve per
        // round, so ≤ log2(64) + 1 = 7 rounds including the final empty
        // one.
        let g = random_graph(64, 1.0, 3);
        let (_, rounds) = boruvka_max_st(&g);
        assert!(
            rounds.len() <= 7,
            "expected ≤ 7 rounds, got {}",
            rounds.len()
        );
        // Every merging round at least halves the live fragments: each
        // fragment joins a merge component of size ≥ 2.
        for r in &rounds[..rounds.len() - 1] {
            assert!(
                r.fragments_after <= r.fragments_before / 2,
                "round failed to halve fragments: {r:?}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let e = WeightedGraph::new(0);
        assert_eq!(kruskal_max_st(&e).edges.len(), 0);
        let s = WeightedGraph::new(1);
        let f = prim_max_st(&s);
        assert_eq!(f.edges.len(), 0);
        assert_eq!(f.tree_count, 1);
    }

    #[test]
    fn max_st_beats_any_other_spanning_tree() {
        // Exchange check: the max-ST total weight is >= the total of a
        // star spanning tree on the same random connected graph.
        let g = random_graph(20, 1.0, 9);
        let max_w = kruskal_max_st(&g).total_weight().get();
        let star_w: f64 = (1..20).map(|v| g.weight(0, v).unwrap().get()).sum();
        assert!(max_w >= star_w);
    }

    #[test]
    fn resulting_edges_form_a_tree() {
        let g = random_graph(30, 0.5, 4);
        let f = kruskal_max_st(&g);
        // Acyclic: union-find never sees a redundant union.
        let mut uf = UnionFind::new(g.n());
        for e in &f.edges {
            assert!(uf.union(e.u, e.v), "cycle edge {e:?}");
        }
    }
}
