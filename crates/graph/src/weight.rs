//! Totally-ordered edge weights.
//!
//! Edge weights in this workspace are proximity-signal strengths in dBm
//! — plain `f64`s that are never NaN. [`W`] wraps `f64` with `Ord`/`Eq`
//! implemented via `total_cmp`, and asserts non-NaN at construction so a
//! corrupted weight fails at the boundary instead of silently reordering
//! a heap deep inside Prim's algorithm.

use serde::{Deserialize, Serialize};

/// A non-NaN edge weight with total order.
///
/// ```
/// use ffd2d_graph::W;
/// let mut v = vec![W::new(3.0), W::new(-1.0), W::new(2.0)];
/// v.sort();
/// assert_eq!(v, vec![W::new(-1.0), W::new(2.0), W::new(3.0)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct W(f64);

impl W {
    /// Wrap a weight. Panics on NaN.
    #[inline]
    pub fn new(value: f64) -> W {
        assert!(!value.is_nan(), "edge weight must not be NaN");
        W(value)
    }

    /// The raw value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// The smallest possible weight (used as sentinel in max-selection).
    pub const NEG_INFINITY: W = W(f64::NEG_INFINITY);
}

impl Eq for W {}

impl PartialOrd for W {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for W {
    #[inline]
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for W {
    #[inline]
    fn from(v: f64) -> W {
        W::new(v)
    }
}

impl core::ops::Add for W {
    type Output = W;
    #[inline]
    fn add(self, rhs: W) -> W {
        W::new(self.0 + rhs.0)
    }
}

impl core::iter::Sum for W {
    fn sum<I: Iterator<Item = W>>(iter: I) -> W {
        W::new(iter.map(|w| w.0).sum())
    }
}

impl core::fmt::Display for W {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_numerically() {
        assert!(W::new(1.0) < W::new(2.0));
        assert!(W::new(-5.0) < W::new(-1.0));
        assert_eq!(W::new(3.0).max(W::new(7.0)), W::new(7.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = W::new(f64::NAN);
    }

    #[test]
    fn negative_infinity_sentinel_is_minimal() {
        assert!(W::NEG_INFINITY < W::new(f64::MIN));
    }

    #[test]
    fn sum_and_add() {
        let total: W = [W::new(1.0), W::new(2.5)].into_iter().sum();
        assert_eq!(total, W::new(3.5));
        assert_eq!(W::new(1.0) + W::new(2.0), W::new(3.0));
    }

    #[test]
    fn from_f64() {
        let w: W = 4.2.into();
        assert_eq!(w.get(), 4.2);
    }
}
