//! Weighted undirected graph representation.
//!
//! [`WeightedGraph`] stores an undirected simple graph with `u32` vertex
//! ids and [`W`] weights, as per-vertex adjacency vectors. The proximity
//! graphs it holds are dense in the paper's fixed 100 m × 100 m arena
//! (nearly full mesh), so adjacency vectors are pre-sized and edges are
//! stored once per direction for O(deg) neighbour scans.

use serde::{Deserialize, Serialize};

use crate::weight::W;
use crate::VertexId;

/// An undirected weighted edge; canonical form has `u < v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: VertexId,
    /// Larger endpoint.
    pub v: VertexId,
    /// Edge weight (PS strength).
    pub w: W,
}

impl Edge {
    /// Construct an edge, canonicalising endpoint order.
    pub fn new(a: VertexId, b: VertexId, w: W) -> Edge {
        assert_ne!(a, b, "self-loops are not allowed in proximity graphs");
        let (u, v) = if a < b { (a, b) } else { (b, a) };
        Edge { u, v, w }
    }

    /// The endpoint that is not `x`. Panics if `x` is not an endpoint.
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("vertex {x} is not an endpoint of {self:?}")
        }
    }

    /// Deterministic tie-break key: weight descending, then endpoints
    /// ascending. Two edges compare equal only if identical.
    pub fn heavy_key(&self) -> (W, core::cmp::Reverse<(VertexId, VertexId)>) {
        (self.w, core::cmp::Reverse((self.u, self.v)))
    }
}

/// Undirected weighted simple graph with dense `0..n` vertex ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WeightedGraph {
    adj: Vec<Vec<(VertexId, W)>>,
    m: usize,
}

impl WeightedGraph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        WeightedGraph {
            adj: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Build from an edge list.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = Edge>) -> Self {
        let mut g = WeightedGraph::new(n);
        for e in edges {
            g.add_edge(e.u, e.v, e.w);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Add the undirected edge `{a, b}` with weight `w`.
    ///
    /// # Panics
    ///
    /// On self-loops, out-of-range endpoints, or duplicate edges.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId, w: W) {
        assert_ne!(a, b, "self-loops are not allowed");
        assert!((a as usize) < self.n() && (b as usize) < self.n());
        debug_assert!(
            !self.has_edge(a, b),
            "duplicate edge {{{a}, {b}}} in simple graph"
        );
        self.adj[a as usize].push((b, w));
        self.adj[b as usize].push((a, w));
        self.m += 1;
    }

    /// True if `{a, b}` is an edge.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.adj
            .get(a as usize)
            .is_some_and(|nbrs| nbrs.iter().any(|&(x, _)| x == b))
    }

    /// The weight of edge `{a, b}`, if present.
    pub fn weight(&self, a: VertexId, b: VertexId) -> Option<W> {
        self.adj[a as usize]
            .iter()
            .find(|&&(x, _)| x == b)
            .map(|&(_, w)| w)
    }

    /// Neighbours of `v` with edge weights.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, W)] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// All edges in canonical form (each once), in insertion-independent
    /// sorted order.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.m);
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &(v, w) in nbrs {
                if (u as VertexId) < v {
                    out.push(Edge {
                        u: u as VertexId,
                        v,
                        w,
                    });
                }
            }
        }
        out.sort();
        out
    }

    /// Total weight over all edges.
    pub fn total_weight(&self) -> W {
        self.edges().into_iter().map(|e| e.w).sum()
    }

    /// The heaviest edge incident to `v` whose other endpoint satisfies
    /// `pred`, with deterministic tie-breaking. This is the
    /// "highest-weighted edge ∉ S_v adjacent to v" selection of
    /// Algorithm 2.
    pub fn best_incident<F: Fn(VertexId) -> bool>(&self, v: VertexId, pred: F) -> Option<Edge> {
        self.adj[v as usize]
            .iter()
            .filter(|&&(u, _)| pred(u))
            .map(|&(u, w)| Edge::new(v, u, w))
            .max_by(|a, b| a.heavy_key().cmp(&b.heavy_key()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(x: f64) -> W {
        W::new(x)
    }

    fn triangle() -> WeightedGraph {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, w(1.0));
        g.add_edge(1, 2, w(2.0));
        g.add_edge(0, 2, w(3.0));
        g
    }

    #[test]
    fn edge_canonicalises_endpoints() {
        let e = Edge::new(5, 2, w(1.0));
        assert_eq!((e.u, e.v), (2, 5));
        assert_eq!(e.other(2), 5);
        assert_eq!(e.other(5), 2);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_rejects_non_endpoint() {
        Edge::new(0, 1, w(1.0)).other(9);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let _ = Edge::new(3, 3, w(1.0));
    }

    #[test]
    fn counts_and_lookups() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(1), 2);
        assert!(g.has_edge(0, 2) && g.has_edge(2, 0));
        assert_eq!(g.weight(1, 2), Some(w(2.0)));
        assert_eq!(g.weight(0, 1), Some(w(1.0)));
    }

    #[test]
    fn edges_listed_once_in_canonical_order() {
        let g = triangle();
        let es = g.edges();
        assert_eq!(es.len(), 3);
        assert!(es.windows(2).all(|p| p[0] <= p[1]));
        for e in &es {
            assert!(e.u < e.v);
        }
        assert_eq!(g.total_weight(), w(6.0));
    }

    #[test]
    fn best_incident_picks_heaviest_allowed() {
        let g = triangle();
        let best = g.best_incident(0, |_| true).unwrap();
        assert_eq!((best.u, best.v), (0, 2));
        // Exclude vertex 2 → next best is the edge to 1.
        let best = g.best_incident(0, |u| u != 2).unwrap();
        assert_eq!((best.u, best.v), (0, 1));
        // Exclude everything → none.
        assert!(g.best_incident(0, |_| false).is_none());
    }

    #[test]
    fn best_incident_tie_break_is_deterministic() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, w(5.0));
        g.add_edge(0, 2, w(5.0));
        g.add_edge(0, 3, w(5.0));
        // Equal weights: lowest endpoint pair wins.
        let best = g.best_incident(0, |_| true).unwrap();
        assert_eq!((best.u, best.v), (0, 1));
    }

    #[test]
    fn from_edges_round_trip() {
        let es = triangle().edges();
        let g2 = WeightedGraph::from_edges(3, es.iter().copied());
        assert_eq!(g2.edges(), es);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_rejected() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, w(1.0));
        g.add_edge(1, 0, w(2.0));
    }
}
