//! Connected components.
//!
//! The firefly protocols can only synchronize devices that are mutually
//! reachable; experiments verify connectivity of the proximity graph
//! before measuring convergence (a disconnected deployment can never
//! reach `|ST| = 1`).

use crate::adjacency::WeightedGraph;
use crate::VertexId;

/// Component labels (`0..k`, by order of first discovery) for every
/// vertex, plus the component count.
pub fn components(g: &WeightedGraph) -> (Vec<u32>, usize) {
    let n = g.n();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for start in 0..n as VertexId {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = next;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &(u, _) in g.neighbors(v) {
                if label[u as usize] == u32::MAX {
                    label[u as usize] = next;
                    stack.push(u);
                }
            }
        }
        next += 1;
    }
    (label, next as usize)
}

/// True if the graph is connected (vacuously true for `n ≤ 1`).
pub fn is_connected(g: &WeightedGraph) -> bool {
    components(g).1 <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weight::W;

    #[test]
    fn empty_graph() {
        let g = WeightedGraph::new(0);
        assert!(is_connected(&g));
        assert_eq!(components(&g).1, 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = WeightedGraph::new(3);
        let (labels, k) = components(&g);
        assert_eq!(k, 3);
        assert_eq!(labels, vec![0, 1, 2]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn path_is_connected() {
        let mut g = WeightedGraph::new(4);
        for i in 0..3 {
            g.add_edge(i, i + 1, W::new(1.0));
        }
        assert!(is_connected(&g));
        let (labels, k) = components(&g);
        assert_eq!(k, 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn two_components_labelled_by_discovery() {
        let mut g = WeightedGraph::new(5);
        g.add_edge(0, 1, W::new(1.0));
        g.add_edge(3, 4, W::new(1.0));
        let (labels, k) = components(&g);
        assert_eq!(k, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[2], labels[3]);
    }
}
