//! GHS-style fragment bookkeeping.
//!
//! Algorithm 1 of the paper starts every device as its own single-node
//! spanning tree `S_v` and repeatedly merges sub-trees over their
//! heaviest outgoing edges until one tree remains (`|ST| = 1`), choosing
//! each merged tree's head "from highest number of node's tree". A
//! [`FragmentForest`] is the bookkeeping for exactly that process:
//! fragment membership, per-fragment head, member lists (small-to-large
//! merged) and the accepted tree edges.
//!
//! The distributed protocol in `ffd2d-core` holds one of these as its
//! ground truth while the *devices* discover the same structure through
//! messages; the sequential tests here pin down the merge semantics.

use serde::{Deserialize, Serialize};

use crate::adjacency::Edge;
use crate::unionfind::UnionFind;
use crate::VertexId;

/// Disjoint fragments of a growing spanning forest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FragmentForest {
    #[serde(skip, default = "empty_uf")]
    uf: UnionFind,
    /// Per-representative fragment metadata (only valid at root indexes).
    head: Vec<VertexId>,
    members: Vec<Vec<VertexId>>,
    tree_edges: Vec<Edge>,
    n: usize,
}

// Referenced only by the `#[serde(default = "empty_uf")]` attribute,
// which the vendored inert derive does not expand.
#[allow(dead_code)]
fn empty_uf() -> UnionFind {
    UnionFind::new(0)
}

impl FragmentForest {
    /// `n` singleton fragments; every vertex heads its own fragment.
    pub fn new(n: usize) -> Self {
        FragmentForest {
            uf: UnionFind::new(n),
            head: (0..n as VertexId).collect(),
            members: (0..n as VertexId).map(|v| vec![v]).collect(),
            tree_edges: Vec::with_capacity(n.saturating_sub(1)),
            n,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if there are no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of live fragments (`|ST|` in Algorithm 1).
    #[inline]
    pub fn fragment_count(&self) -> usize {
        self.uf.set_count()
    }

    /// True once a single spanning tree remains.
    #[inline]
    pub fn is_single_tree(&self) -> bool {
        self.fragment_count() == 1
    }

    /// Canonical fragment id (union–find representative) of `v`.
    #[inline]
    pub fn fragment_of(&mut self, v: VertexId) -> VertexId {
        self.uf.find(v)
    }

    /// Fragment id without path compression (usable with `&self`).
    #[inline]
    pub fn fragment_of_const(&self, v: VertexId) -> VertexId {
        self.uf.find_const(v)
    }

    /// The head (coordinator) of `v`'s fragment.
    pub fn head_of(&mut self, v: VertexId) -> VertexId {
        let r = self.uf.find(v);
        self.head[r as usize]
    }

    /// Members of `v`'s fragment.
    pub fn members_of(&mut self, v: VertexId) -> &[VertexId] {
        let r = self.uf.find(v);
        &self.members[r as usize]
    }

    /// Size of `v`'s fragment.
    pub fn size_of(&mut self, v: VertexId) -> usize {
        let r = self.uf.find(v);
        self.members[r as usize].len()
    }

    /// Re-seat the head of `v`'s fragment (Algorithm 1's
    /// `Change_head(S_v)` step when a head has no outgoing edge).
    ///
    /// # Panics
    ///
    /// If `new_head` is not a member of `v`'s fragment.
    pub fn change_head(&mut self, v: VertexId, new_head: VertexId) {
        let r = self.uf.find(v);
        assert_eq!(
            self.uf.find(new_head),
            r,
            "new head must belong to the same fragment"
        );
        self.head[r as usize] = new_head;
    }

    /// Merge the fragments joined by `edge` (Algorithm 1's
    /// `Merge_Sub_Tree`). The surviving head is the head of the *larger*
    /// fragment ("choose S_v.head from highest number of node's tree");
    /// ties go to the head with the smaller vertex id, deterministically.
    ///
    /// Returns `true` if a merge happened (`false` if both endpoints
    /// were already in one fragment — the edge is then *not* recorded).
    pub fn merge(&mut self, edge: Edge) -> bool {
        let (ru, rv) = (self.uf.find(edge.u), self.uf.find(edge.v));
        if ru == rv {
            return false;
        }
        // Decide surviving head before the union reshuffles roots.
        let (su, sv) = (
            self.members[ru as usize].len(),
            self.members[rv as usize].len(),
        );
        let (hu, hv) = (self.head[ru as usize], self.head[rv as usize]);
        let surviving_head = match su.cmp(&sv) {
            core::cmp::Ordering::Greater => hu,
            core::cmp::Ordering::Less => hv,
            core::cmp::Ordering::Equal => hu.min(hv),
        };
        let merged = self.uf.union(ru, rv);
        debug_assert!(merged);
        let root = self.uf.find(ru);
        // Small-to-large member merge into whichever vec is larger.
        let (big, small) = if su >= sv { (ru, rv) } else { (rv, ru) };
        let mut moved = core::mem::take(&mut self.members[small as usize]);
        let mut keep = core::mem::take(&mut self.members[big as usize]);
        keep.append(&mut moved);
        self.members[root as usize] = keep;
        self.head[root as usize] = surviving_head;
        self.tree_edges.push(edge);
        true
    }

    /// The accepted spanning-forest edges so far.
    #[inline]
    pub fn tree_edges(&self) -> &[Edge] {
        &self.tree_edges
    }

    /// Canonical ids of all live fragments.
    pub fn fragments(&self) -> Vec<VertexId> {
        (0..self.n as VertexId)
            .filter(|&v| self.uf.find_const(v) == v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weight::W;

    fn e(u: VertexId, v: VertexId, w: f64) -> Edge {
        Edge::new(u, v, W::new(w))
    }

    #[test]
    fn starts_as_singletons() {
        let mut f = FragmentForest::new(4);
        assert_eq!(f.fragment_count(), 4);
        for v in 0..4 {
            assert_eq!(f.head_of(v), v);
            assert_eq!(f.members_of(v), &[v]);
            assert_eq!(f.size_of(v), 1);
        }
        assert!(!f.is_single_tree());
    }

    #[test]
    fn merge_records_edges_and_members() {
        let mut f = FragmentForest::new(4);
        assert!(f.merge(e(0, 1, 5.0)));
        assert!(f.merge(e(2, 3, 4.0)));
        assert_eq!(f.fragment_count(), 2);
        assert_eq!(f.size_of(0), 2);
        assert!(f.merge(e(1, 2, 3.0)));
        assert!(f.is_single_tree());
        assert_eq!(f.tree_edges().len(), 3);
        let mut all = f.members_of(0).to_vec();
        all.sort();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn redundant_merge_is_rejected_and_not_recorded() {
        let mut f = FragmentForest::new(3);
        assert!(f.merge(e(0, 1, 1.0)));
        assert!(f.merge(e(1, 2, 1.0)));
        assert!(!f.merge(e(0, 2, 9.0)));
        assert_eq!(f.tree_edges().len(), 2);
    }

    #[test]
    fn larger_fragment_keeps_its_head() {
        let mut f = FragmentForest::new(5);
        f.merge(e(0, 1, 1.0)); // {0,1} head 0 (tie → min id)
        f.merge(e(0, 2, 1.0)); // {0,1,2} bigger, head stays 0
        assert_eq!(f.head_of(2), 0);
        // Merge size-3 with size-2: head of the size-3 side survives.
        f.merge(e(3, 4, 1.0)); // {3,4} head 3
        f.merge(e(2, 3, 1.0));
        assert_eq!(f.head_of(4), 0);
    }

    #[test]
    fn equal_size_tie_goes_to_smaller_head_id() {
        let mut f = FragmentForest::new(4);
        f.merge(e(2, 3, 1.0)); // head 2
        f.merge(e(0, 1, 1.0)); // head 0
        f.merge(e(1, 2, 1.0)); // sizes 2 vs 2 → head min(0, 2) = 0
        assert_eq!(f.head_of(3), 0);
    }

    #[test]
    fn change_head_within_fragment() {
        let mut f = FragmentForest::new(3);
        f.merge(e(0, 1, 1.0));
        f.change_head(0, 1);
        assert_eq!(f.head_of(0), 1);
    }

    #[test]
    #[should_panic(expected = "same fragment")]
    fn change_head_rejects_outsider() {
        let mut f = FragmentForest::new(3);
        f.merge(e(0, 1, 1.0));
        f.change_head(0, 2);
    }

    #[test]
    fn fragments_lists_live_roots() {
        let mut f = FragmentForest::new(5);
        f.merge(e(0, 1, 1.0));
        f.merge(e(2, 3, 1.0));
        let frags = f.fragments();
        assert_eq!(frags.len(), 3);
        // Each vertex's fragment id must be in the list.
        for v in 0..5 {
            assert!(frags.contains(&f.fragment_of(v)));
        }
    }
}
