//! Rooted-tree utilities.
//!
//! Once a spanning tree is agreed, every device needs to know its tree
//! neighbours, its parent toward the fragment head, and the head needs
//! BFS order to schedule convergecast reports. [`RootedTree`] derives
//! all of that from an edge list plus a root.

use serde::{Deserialize, Serialize};

use crate::adjacency::Edge;
use crate::VertexId;

/// A rooted spanning tree over dense vertices `0..n`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RootedTree {
    root: VertexId,
    parent: Vec<Option<VertexId>>,
    children: Vec<Vec<VertexId>>,
    depth: Vec<u32>,
    bfs_order: Vec<VertexId>,
}

impl RootedTree {
    /// Build a rooted tree from `n`, a root, and exactly the tree edges.
    ///
    /// Returns `None` if the edges do not form a spanning tree of the
    /// `n` vertices (wrong count, disconnected, or cyclic).
    pub fn from_edges(n: usize, root: VertexId, edges: &[Edge]) -> Option<RootedTree> {
        if n == 0 || root as usize >= n || edges.len() != n - 1 {
            return None;
        }
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for e in edges {
            if e.u as usize >= n || e.v as usize >= n {
                return None;
            }
            adj[e.u as usize].push(e.v);
            adj[e.v as usize].push(e.u);
        }
        let mut parent = vec![None; n];
        let mut depth = vec![0u32; n];
        let mut children: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut bfs_order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[root as usize] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            bfs_order.push(v);
            for &u in &adj[v as usize] {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    parent[u as usize] = Some(v);
                    depth[u as usize] = depth[v as usize] + 1;
                    children[v as usize].push(u);
                    queue.push_back(u);
                }
            }
        }
        if bfs_order.len() != n {
            return None; // disconnected (and therefore also cyclic somewhere)
        }
        Some(RootedTree {
            root,
            parent,
            children,
            depth,
            bfs_order,
        })
    }

    /// The root vertex.
    #[inline]
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Parent of `v` (`None` for the root).
    #[inline]
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        self.parent[v as usize]
    }

    /// Children of `v`.
    #[inline]
    pub fn children(&self, v: VertexId) -> &[VertexId] {
        &self.children[v as usize]
    }

    /// Depth of `v` below the root.
    #[inline]
    pub fn depth(&self, v: VertexId) -> u32 {
        self.depth[v as usize]
    }

    /// Height of the tree (max depth).
    pub fn height(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Vertices in BFS order from the root.
    #[inline]
    pub fn bfs_order(&self) -> &[VertexId] {
        &self.bfs_order
    }

    /// The path from `v` up to the root, inclusive.
    pub fn path_to_root(&self, mut v: VertexId) -> Vec<VertexId> {
        let mut path = vec![v];
        while let Some(p) = self.parent[v as usize] {
            path.push(p);
            v = p;
        }
        path
    }

    /// Subtree sizes, indexed by vertex (computed in reverse BFS order).
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let mut size = vec![1u32; self.len()];
        for &v in self.bfs_order.iter().rev() {
            if let Some(p) = self.parent[v as usize] {
                size[p as usize] += size[v as usize];
            }
        }
        size
    }
}

/// Validate that `edges` form a spanning tree over `n` vertices.
pub fn is_spanning_tree(n: usize, edges: &[Edge]) -> bool {
    RootedTree::from_edges(n, 0, edges).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weight::W;

    fn e(u: VertexId, v: VertexId) -> Edge {
        Edge::new(u, v, W::new(1.0))
    }

    /// Path 0-1-2-3 plus branch 1-4.
    fn sample() -> RootedTree {
        RootedTree::from_edges(5, 0, &[e(0, 1), e(1, 2), e(2, 3), e(1, 4)]).unwrap()
    }

    #[test]
    fn parents_and_children() {
        let t = sample();
        assert_eq!(t.root(), 0);
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(2), Some(1));
        assert_eq!(t.parent(4), Some(1));
        let mut kids = t.children(1).to_vec();
        kids.sort();
        assert_eq!(kids, vec![2, 4]);
    }

    #[test]
    fn depths_and_height() {
        let t = sample();
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.depth(1), 1);
        assert_eq!(t.depth(3), 3);
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn bfs_order_starts_at_root_and_is_level_monotone() {
        let t = sample();
        let order = t.bfs_order();
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), 5);
        for w in order.windows(2) {
            assert!(t.depth(w[0]) <= t.depth(w[1]));
        }
    }

    #[test]
    fn path_to_root() {
        let t = sample();
        assert_eq!(t.path_to_root(3), vec![3, 2, 1, 0]);
        assert_eq!(t.path_to_root(0), vec![0]);
    }

    #[test]
    fn subtree_sizes_sum_correctly() {
        let t = sample();
        let s = t.subtree_sizes();
        assert_eq!(s[0], 5);
        assert_eq!(s[1], 4);
        assert_eq!(s[2], 2);
        assert_eq!(s[3], 1);
        assert_eq!(s[4], 1);
    }

    #[test]
    fn rejects_wrong_edge_count() {
        assert!(RootedTree::from_edges(4, 0, &[e(0, 1), e(1, 2)]).is_none());
    }

    #[test]
    fn rejects_disconnected() {
        // 4 vertices, 3 edges, but with a cycle + isolated vertex.
        assert!(RootedTree::from_edges(4, 0, &[e(0, 1), e(1, 2), e(0, 2)]).is_none());
    }

    #[test]
    fn rejects_bad_root_or_vertices() {
        assert!(RootedTree::from_edges(3, 7, &[e(0, 1), e(1, 2)]).is_none());
        assert!(RootedTree::from_edges(2, 0, &[e(0, 5)]).is_none());
        assert!(RootedTree::from_edges(0, 0, &[]).is_none());
    }

    #[test]
    fn is_spanning_tree_helper() {
        assert!(is_spanning_tree(3, &[e(0, 1), e(1, 2)]));
        assert!(!is_spanning_tree(3, &[e(0, 1)]));
    }

    #[test]
    fn rerooting_preserves_vertex_set() {
        let edges = [e(0, 1), e(1, 2), e(2, 3), e(1, 4)];
        for root in 0..5 {
            let t = RootedTree::from_edges(5, root, &edges).unwrap();
            assert_eq!(t.root(), root);
            assert_eq!(t.bfs_order().len(), 5);
            assert_eq!(t.subtree_sizes()[root as usize], 5);
        }
    }
}
