//! Uniform spatial-grid neighbor index.
//!
//! The collision medium and proximity-graph construction both ask one
//! geometric question: *which devices can possibly hear a transmitter?*
//! With a dense `n × n` gain matrix that answer costs O(n) per query and
//! O(n²) memory up front. [`SpatialGrid`] replaces it with uniform
//! bucketing: the arena is cut into square cells whose side is the
//! worst-case audibility radius (derived from the path-loss model and
//! the detection threshold by the radio layer), so a disc query touches
//! a bounded number of cells and returns O(occupancy) candidates.
//!
//! Design notes:
//!
//! * The index stores point ids in a CSR layout (`cell_start` offsets
//!   into one `items` array), rebuilt by counting sort — re-bucketing
//!   after a mobility step is O(n) and reuses every allocation.
//! * Ids within a cell are stored in ascending order, and
//!   [`SpatialGrid::cells_intersecting_disc`] yields cells in ascending
//!   linear-index order, so iteration over candidates is deterministic
//!   — a requirement for bit-reproducible trials.
//! * [`SpatialGrid::within`] is *inclusive* (`distance ≤ r`): a pair at
//!   exactly the audibility radius is a candidate, never pruned. The
//!   disc→cell cover is the disc's bounding box, a conservative
//!   superset, so pruning can only drop provably-inaudible pairs.
//! * Coordinates outside the arena are clamped into the boundary cells
//!   rather than rejected (mobility models clamp to the arena anyway).

use crate::VertexId;

/// Hard cap on the number of grid cells; callers pick the cell size, and
/// this guards against degenerate configurations (huge arena, tiny
/// radius) silently allocating unbounded memory.
pub const MAX_CELLS: usize = 1 << 24;

/// A uniform grid over a `width × height` arena indexing point ids.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell_size: f64,
    cols: usize,
    rows: usize,
    /// CSR offsets: cell `c` holds `items[cell_start[c]..cell_start[c+1]]`.
    cell_start: Vec<u32>,
    /// Point ids grouped by cell, ascending within each cell.
    items: Vec<u32>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Counting-sort cursor, kept to reuse its allocation on re-bucket.
    cursor: Vec<u32>,
    /// Monotonic bucketing generation: incremented by every
    /// [`SpatialGrid::rebucket`] (including the one inside
    /// [`SpatialGrid::new`]). Consumers that cache position-derived
    /// state key their entries on this value — geometry is unchanged
    /// exactly while the generation is unchanged.
    generation: u64,
}

impl SpatialGrid {
    /// Build a grid with square cells of side `cell_size` over a
    /// `width × height` arena and bucket `points` (id = index).
    ///
    /// # Panics
    ///
    /// If the arena or cell size is non-positive/non-finite, or the
    /// implied cell count exceeds [`MAX_CELLS`].
    pub fn new(width: f64, height: f64, cell_size: f64, points: &[(f64, f64)]) -> SpatialGrid {
        assert!(
            width > 0.0 && height > 0.0 && width.is_finite() && height.is_finite(),
            "arena must be positive and finite"
        );
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell size must be positive and finite"
        );
        let cols = ((width / cell_size).ceil() as usize).max(1);
        let rows = ((height / cell_size).ceil() as usize).max(1);
        assert!(
            cols.saturating_mul(rows) <= MAX_CELLS,
            "grid of {cols}x{rows} cells exceeds MAX_CELLS; pick a larger cell size"
        );
        let mut grid = SpatialGrid {
            cell_size,
            cols,
            rows,
            cell_start: Vec::new(),
            items: Vec::new(),
            xs: Vec::new(),
            ys: Vec::new(),
            cursor: Vec::new(),
            generation: 0,
        };
        grid.rebucket(points);
        grid
    }

    /// Re-bucket after positions changed (mobility step). O(n) counting
    /// sort; reuses all allocations. `points` may differ in length from
    /// the previous population.
    pub fn rebucket(&mut self, points: &[(f64, f64)]) {
        self.generation += 1;
        let cells = self.cols * self.rows;
        self.xs.clear();
        self.ys.clear();
        self.xs.extend(points.iter().map(|p| p.0));
        self.ys.extend(points.iter().map(|p| p.1));

        self.cell_start.clear();
        self.cell_start.resize(cells + 1, 0);
        for &(x, y) in points {
            let c = self.cell_index(x, y);
            self.cell_start[c + 1] += 1;
        }
        for c in 0..cells {
            self.cell_start[c + 1] += self.cell_start[c];
        }

        self.cursor.clear();
        self.cursor.extend_from_slice(&self.cell_start[..cells]);
        self.items.clear();
        self.items.resize(points.len(), 0);
        // Points are visited in id order, so each cell's slice ends up
        // sorted ascending by id.
        for (i, &(x, y)) in points.iter().enumerate() {
            let c = self.cell_index(x, y);
            self.items[self.cursor[c] as usize] = i as u32;
            self.cursor[c] += 1;
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True if no points are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Cell side length.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Grid columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.cols * self.rows
    }

    /// The current bucketing generation (see the field docs): ≥ 1 once
    /// constructed, strictly increasing across re-buckets. Two calls
    /// returning the same value guarantee no point moved in between.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The stored coordinates of point `id`.
    #[inline]
    pub fn point(&self, id: VertexId) -> (f64, f64) {
        (self.xs[id as usize], self.ys[id as usize])
    }

    #[inline]
    fn clamp_axis(coord: f64, cell: f64, count: usize) -> usize {
        if !coord.is_finite() || coord <= 0.0 {
            return 0;
        }
        ((coord / cell).floor() as usize).min(count - 1)
    }

    /// Linear index of the cell containing `(x, y)` (clamped into the
    /// arena).
    #[inline]
    pub fn cell_index(&self, x: f64, y: f64) -> usize {
        Self::clamp_axis(y, self.cell_size, self.rows) * self.cols
            + Self::clamp_axis(x, self.cell_size, self.cols)
    }

    /// Point ids bucketed in cell `cell`, ascending.
    #[inline]
    pub fn cell_items(&self, cell: usize) -> &[VertexId] {
        let lo = self.cell_start[cell] as usize;
        let hi = self.cell_start[cell + 1] as usize;
        &self.items[lo..hi]
    }

    /// Linear indices of every cell whose area may intersect the disc of
    /// radius `r` around `(x, y)` — the cells covering the disc's
    /// bounding box. Yields ascending linear indices (row-major), which
    /// keeps downstream iteration deterministic.
    pub fn cells_intersecting_disc(
        &self,
        x: f64,
        y: f64,
        r: f64,
    ) -> impl Iterator<Item = usize> + '_ {
        let r = r.max(0.0);
        let c0 = Self::clamp_axis(x - r, self.cell_size, self.cols);
        let c1 = Self::clamp_axis(x + r, self.cell_size, self.cols);
        let r0 = Self::clamp_axis(y - r, self.cell_size, self.rows);
        let r1 = Self::clamp_axis(y + r, self.cell_size, self.rows);
        let cols = self.cols;
        (r0..=r1).flat_map(move |row| (c0..=c1).map(move |col| row * cols + col))
    }

    /// Append to `out` the ids of every point within distance `r`
    /// (inclusive) of `(x, y)`, sorted ascending. Includes a stored
    /// point at the query position itself; callers exclude self-ids.
    pub fn within(&self, x: f64, y: f64, r: f64, out: &mut Vec<VertexId>) {
        let start = out.len();
        let r2 = r * r;
        for cell in self.cells_intersecting_disc(x, y, r) {
            for &id in self.cell_items(cell) {
                let dx = self.xs[id as usize] - x;
                let dy = self.ys[id as usize] - y;
                if dx * dx + dy * dy <= r2 {
                    out.push(id);
                }
            }
        }
        out[start..].sort_unstable();
    }

    /// Convenience wrapper over [`SpatialGrid::within`] that allocates.
    pub fn within_vec(&self, x: f64, y: f64, r: f64) -> Vec<VertexId> {
        let mut out = Vec::new();
        self.within(x, y, r, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(points: &[(f64, f64)], x: f64, y: f64, r: f64) -> Vec<VertexId> {
        let r2 = r * r;
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                let (dx, dy) = (p.0 - x, p.1 - y);
                dx * dx + dy * dy <= r2
            })
            .map(|(i, _)| i as VertexId)
            .collect()
    }

    #[test]
    fn geometry_matches_arena() {
        let g = SpatialGrid::new(100.0, 50.0, 30.0, &[]);
        assert_eq!(g.cols(), 4);
        assert_eq!(g.rows(), 2);
        assert_eq!(g.cell_count(), 8);
        assert!(g.is_empty());
    }

    #[test]
    fn single_cell_grid_holds_everything() {
        let pts = [(1.0, 1.0), (99.0, 99.0), (50.0, 50.0)];
        let g = SpatialGrid::new(100.0, 100.0, 150.0, &pts);
        assert_eq!(g.cell_count(), 1);
        assert_eq!(g.cell_items(0), &[0, 1, 2]);
    }

    #[test]
    fn boundary_coordinates_are_clamped_into_the_grid() {
        // Points exactly on the far edge (and beyond) land in the last
        // cell instead of indexing out of bounds.
        let pts = [(100.0, 100.0), (120.0, -3.0), (0.0, 0.0)];
        let g = SpatialGrid::new(100.0, 100.0, 10.0, &pts);
        assert_eq!(g.cell_index(100.0, 100.0), g.cell_count() - 1);
        assert_eq!(g.cell_index(0.0, 0.0), 0);
        assert_eq!(g.len(), 3);
        // Every point is findable.
        assert_eq!(g.within_vec(50.0, 50.0, 200.0), vec![0, 1, 2]);
    }

    #[test]
    fn within_matches_brute_force() {
        // Deterministic pseudo-random scatter.
        let mut s = 12345u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<(f64, f64)> = (0..200).map(|_| (next() * 200.0, next() * 100.0)).collect();
        let g = SpatialGrid::new(200.0, 100.0, 17.0, &pts);
        for &(qx, qy, r) in &[(10.0, 10.0, 25.0), (100.0, 50.0, 17.0), (199.0, 99.0, 60.0)] {
            assert_eq!(g.within_vec(qx, qy, r), brute_force(&pts, qx, qy, r));
        }
    }

    #[test]
    fn query_radius_is_inclusive_at_the_boundary() {
        // 3-4-5 triangle: the point at exactly distance 5 is included.
        let pts = [(0.0, 0.0), (3.0, 4.0)];
        let g = SpatialGrid::new(10.0, 10.0, 2.0, &pts);
        assert_eq!(g.within_vec(0.0, 0.0, 5.0), vec![0, 1]);
        assert_eq!(g.within_vec(0.0, 0.0, 4.999), vec![0]);
    }

    #[test]
    fn co_located_points_are_all_reported() {
        let pts = [(5.0, 5.0), (5.0, 5.0), (5.0, 5.0), (40.0, 40.0)];
        let g = SpatialGrid::new(50.0, 50.0, 10.0, &pts);
        assert_eq!(g.within_vec(5.0, 5.0, 0.0), vec![0, 1, 2]);
    }

    #[test]
    fn rebucket_tracks_moved_points() {
        let mut pts = vec![(1.0, 1.0), (90.0, 90.0)];
        let mut g = SpatialGrid::new(100.0, 100.0, 10.0, &pts);
        assert_eq!(g.within_vec(1.0, 1.0, 5.0), vec![0]);
        pts[1] = (2.0, 2.0);
        g.rebucket(&pts);
        assert_eq!(g.within_vec(1.0, 1.0, 5.0), vec![0, 1]);
        assert_eq!(g.within_vec(90.0, 90.0, 5.0), Vec::<u32>::new());
    }

    #[test]
    fn generation_counts_rebuckets() {
        let pts = vec![(1.0, 1.0), (9.0, 9.0)];
        let mut g = SpatialGrid::new(10.0, 10.0, 5.0, &pts);
        assert_eq!(g.generation(), 1, "construction performs one bucketing");
        g.rebucket(&pts);
        assert_eq!(g.generation(), 2);
        g.rebucket(&[(2.0, 2.0)]);
        assert_eq!(g.generation(), 3);
    }

    #[test]
    fn rebucket_equals_fresh_build() {
        let pts_a: Vec<(f64, f64)> = (0..50)
            .map(|i| (i as f64 * 1.7 % 80.0, i as f64 * 3.1 % 60.0))
            .collect();
        let pts_b: Vec<(f64, f64)> = (0..70)
            .map(|i| (i as f64 * 2.3 % 80.0, i as f64 * 0.9 % 60.0))
            .collect();
        let mut g = SpatialGrid::new(80.0, 60.0, 9.0, &pts_a);
        g.rebucket(&pts_b);
        let fresh = SpatialGrid::new(80.0, 60.0, 9.0, &pts_b);
        for &(qx, qy, r) in &[(0.0, 0.0, 20.0), (40.0, 30.0, 33.0), (79.0, 59.0, 9.0)] {
            assert_eq!(g.within_vec(qx, qy, r), fresh.within_vec(qx, qy, r));
        }
        assert_eq!(g.len(), 70);
    }

    #[test]
    fn disc_cover_is_ascending_and_complete() {
        let g = SpatialGrid::new(100.0, 100.0, 10.0, &[]);
        let cells: Vec<usize> = g.cells_intersecting_disc(55.0, 55.0, 10.0).collect();
        let mut sorted = cells.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(cells, sorted, "cells must come out ascending, unique");
        // A 10 m disc at a cell centre touches a 3x3 neighbourhood.
        assert_eq!(cells.len(), 9);
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_rejected() {
        let _ = SpatialGrid::new(10.0, 10.0, 0.0, &[]);
    }

    #[test]
    #[should_panic(expected = "MAX_CELLS")]
    fn degenerate_cell_count_rejected() {
        let _ = SpatialGrid::new(1.0e9, 1.0e9, 0.001, &[]);
    }
}
