//! The intra-run parallelism knob.
//!
//! The workspace has two parallelism layers. *Trial-level* parallelism
//! ([`crate::run_trials`]) spreads independent Monte-Carlo trials over
//! the pool and is what sweeps use. [`Parallelism`] governs the second
//! layer: sharding the per-slot medium resolution *inside* a single
//! run. Both layers are deterministic — results are a pure function of
//! the inputs, never of the worker count — but they compete for the
//! same cores, so sweeps keep intra-run parallelism [`Parallelism::Off`]
//! (the default) and single-run workloads (trace replays, benches,
//! `--trials 1`) turn it on.

use serde::{Deserialize, Serialize};

use crate::pool::available_workers;

/// How a single run shards its per-slot medium resolution.
///
/// Every mode produces bit-identical results (locked by
/// `tests/medium_equivalence.rs` and `tests/engine_equivalence.rs`);
/// the choice is purely about wall clock and core contention.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parallelism {
    /// Never shard — the sequential resolver. The default: in a sweep,
    /// trial-level parallelism already owns the cores, and a second
    /// layer would only oversubscribe them.
    #[default]
    Off,
    /// Always shard with exactly this many workers (`0` is treated as
    /// `1`). An explicit pin bypasses the [`Parallelism::Auto`]
    /// engagement threshold — benches and the determinism suites use it
    /// to force the sharded path at any problem size.
    Fixed(usize),
    /// Shard with every available core ([`available_workers`], so
    /// `FFD2D_WORKERS` is honored) once a slot's candidate work exceeds
    /// [`Parallelism::AUTO_ENGAGE_PAIRS`]; below the cutoff the slot
    /// runs sequentially, so small populations and near-idle slots pay
    /// no thread overhead.
    Auto,
}

impl Parallelism {
    /// `Auto` engagement cutoff, in candidate `(transmission, receiver)`
    /// pairs per slot. Below this, spawn overhead rivals the work.
    pub const AUTO_ENGAGE_PAIRS: u64 = 16 * 1024;

    /// Worker count for a slot with `pairs` candidate
    /// `(transmission, receiver)` pairs. `1` means "run sequentially".
    pub fn workers_for(self, pairs: u64) -> usize {
        match self {
            Parallelism::Off => 1,
            Parallelism::Fixed(k) => k.max(1),
            Parallelism::Auto => {
                if pairs >= Self::AUTO_ENGAGE_PAIRS {
                    available_workers(usize::MAX)
                } else {
                    1
                }
            }
        }
    }

    /// Parse a `--medium-workers` flag value: `off`, `auto`, or a
    /// positive worker count.
    pub fn from_flag(flag: &str) -> Option<Parallelism> {
        match flag {
            "off" => Some(Parallelism::Off),
            "auto" => Some(Parallelism::Auto),
            k => k
                .parse::<usize>()
                .ok()
                .filter(|&k| k > 0)
                .map(Parallelism::Fixed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_the_default_and_never_shards() {
        assert_eq!(Parallelism::default(), Parallelism::Off);
        assert_eq!(Parallelism::Off.workers_for(u64::MAX), 1);
    }

    #[test]
    fn fixed_bypasses_the_threshold() {
        assert_eq!(Parallelism::Fixed(8).workers_for(0), 8);
        assert_eq!(Parallelism::Fixed(2).workers_for(1), 2);
        assert_eq!(Parallelism::Fixed(0).workers_for(0), 1, "0 means 1");
    }

    #[test]
    fn auto_engages_only_above_the_cutoff() {
        let p = Parallelism::Auto;
        assert_eq!(p.workers_for(0), 1);
        assert_eq!(p.workers_for(Parallelism::AUTO_ENGAGE_PAIRS - 1), 1);
        assert!(p.workers_for(Parallelism::AUTO_ENGAGE_PAIRS) >= 1);
    }

    #[test]
    fn flag_parsing() {
        assert_eq!(Parallelism::from_flag("off"), Some(Parallelism::Off));
        assert_eq!(Parallelism::from_flag("auto"), Some(Parallelism::Auto));
        assert_eq!(Parallelism::from_flag("4"), Some(Parallelism::Fixed(4)));
        assert_eq!(Parallelism::from_flag("0"), None);
        assert_eq!(Parallelism::from_flag("fast"), None);
        assert_eq!(Parallelism::from_flag("-2"), None);
    }
}
