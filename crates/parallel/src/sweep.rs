//! Parameter-sweep Monte-Carlo runner.
//!
//! The experiment shape behind every figure: a parameter grid (node
//! counts, shadowing sigmas, coupling strengths …) × a number of
//! independent trials per point. [`run_trials`] executes every
//! `(param, trial)` cell in parallel and groups raw results by
//! parameter; [`run_sweep`] is the common special case where each trial
//! yields one `f64` and the caller wants a [`Summary`] per parameter.
//!
//! ## Determinism
//!
//! Each cell receives a [`TrialCtx`] whose `seed` is a pure function of
//! `(master_seed, param index, trial index)` via two SplitMix64 rounds.
//! Results are grouped positionally, so the outcome is bit-identical
//! for any worker count — run it on 1 core or 128 and EXPERIMENTS.md
//! does not change.

use ffd2d_metrics::Summary;
use ffd2d_sim::rng::sweep_cell_seed;
use serde::{Deserialize, Serialize};

use crate::pool::parallel_map_with_workers;

/// Sweep-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Master seed; every cell's seed derives from it.
    pub master_seed: u64,
    /// Independent trials per parameter point.
    pub trials: u32,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            master_seed: 0xD2D_F1EE,
            trials: 20,
        }
    }
}

/// Identity of one Monte-Carlo cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialCtx {
    /// Index of the parameter point in the sweep grid.
    pub param_index: usize,
    /// Trial number within the parameter point (`0..trials`).
    pub trial: u32,
    /// Derived deterministic seed for this cell.
    pub seed: u64,
}

impl TrialCtx {
    /// Derive the cell identity for `(param_index, trial)`. Public so
    /// harnesses can replay an individual sweep cell (e.g. re-run trial
    /// 0 of a node count with tracing enabled) under the exact seed the
    /// sweep used.
    pub fn new(cfg: &SweepConfig, param_index: usize, trial: u32) -> TrialCtx {
        TrialCtx {
            param_index,
            trial,
            seed: sweep_cell_seed(cfg.master_seed, param_index as u64, trial as u64),
        }
    }
}

/// The mean ± CI of one sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Summary over the trials at this parameter point.
    pub summary: Summary,
}

/// Run `f` on every `(param, trial)` cell; return raw per-param results
/// in trial order.
pub fn run_trials<P, R, F>(params: &[P], cfg: &SweepConfig, f: F) -> Vec<Vec<R>>
where
    P: Sync,
    R: Send,
    F: Fn(&P, TrialCtx) -> R + Sync,
{
    run_trials_with_workers(params, cfg, None, f)
}

/// [`run_trials`] with an explicit worker count (`None` = automatic).
///
/// Exists so the determinism suite can assert the bit-identical-output
/// guarantee directly: the same `(params, cfg, f)` must produce the
/// same grouped results on any pool size.
pub fn run_trials_with_workers<P, R, F>(
    params: &[P],
    cfg: &SweepConfig,
    workers: Option<usize>,
    f: F,
) -> Vec<Vec<R>>
where
    P: Sync,
    R: Send,
    F: Fn(&P, TrialCtx) -> R + Sync,
{
    assert!(cfg.trials > 0, "need at least one trial");
    let cells: Vec<(usize, u32)> = (0..params.len())
        .flat_map(|p| (0..cfg.trials).map(move |t| (p, t)))
        .collect();
    let flat = parallel_map_with_workers(&cells, workers, |&(p, t)| {
        let ctx = TrialCtx::new(cfg, p, t);
        f(&params[p], ctx)
    });
    let mut grouped: Vec<Vec<R>> = (0..params.len())
        .map(|_| Vec::with_capacity(cfg.trials as usize))
        .collect();
    for ((p, _), r) in cells.into_iter().zip(flat) {
        grouped[p].push(r);
    }
    grouped
}

/// Run a single-metric sweep: one [`Summary`] per parameter point.
pub fn run_sweep<P, F>(params: &[P], cfg: &SweepConfig, f: F) -> Vec<SweepResult>
where
    P: Sync,
    F: Fn(&P, TrialCtx) -> f64 + Sync,
{
    run_trials(params, cfg, f)
        .into_iter()
        .map(|samples| SweepResult {
            summary: Summary::from_samples(samples),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_matches_params() {
        let cfg = SweepConfig {
            master_seed: 1,
            trials: 4,
        };
        let grouped = run_trials(&[10usize, 20, 30], &cfg, |&p, ctx| (p, ctx.trial));
        assert_eq!(grouped.len(), 3);
        for (i, g) in grouped.iter().enumerate() {
            assert_eq!(g.len(), 4);
            for (t, &(p, trial)) in g.iter().enumerate() {
                assert_eq!(p, [10, 20, 30][i]);
                assert_eq!(trial as usize, t);
            }
        }
    }

    #[test]
    fn seeds_are_unique_and_deterministic() {
        let cfg = SweepConfig {
            master_seed: 7,
            trials: 8,
        };
        let a = run_trials(&[0u32, 1, 2], &cfg, |_, ctx| ctx.seed);
        let b = run_trials(&[0u32, 1, 2], &cfg, |_, ctx| ctx.seed);
        assert_eq!(a, b, "same config must give same seeds");
        let mut all: Vec<u64> = a.into_iter().flatten().collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "seed collision across cells");
    }

    #[test]
    fn different_master_seed_changes_cells() {
        let a = run_trials(
            &[0u32],
            &SweepConfig {
                master_seed: 1,
                trials: 2,
            },
            |_, ctx| ctx.seed,
        );
        let b = run_trials(
            &[0u32],
            &SweepConfig {
                master_seed: 2,
                trials: 2,
            },
            |_, ctx| ctx.seed,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn sweep_summaries() {
        let cfg = SweepConfig {
            master_seed: 3,
            trials: 10,
        };
        // Metric = param value exactly → zero variance summaries.
        let res = run_sweep(&[5.0f64, 9.0], &cfg, |&p, _| p);
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].summary.mean(), 5.0);
        assert_eq!(res[1].summary.mean(), 9.0);
        assert_eq!(res[0].summary.std_dev(), 0.0);
        assert_eq!(res[0].summary.count(), 10);
    }

    #[test]
    fn empty_params_is_fine() {
        let cfg = SweepConfig::default();
        let res = run_sweep(&[] as &[u32], &cfg, |_, _| 0.0);
        assert!(res.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let cfg = SweepConfig {
            master_seed: 0,
            trials: 0,
        };
        let _ = run_sweep(&[1u32], &cfg, |_, _| 0.0);
    }
}
