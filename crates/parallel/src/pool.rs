//! Order-preserving parallel map on scoped threads.
//!
//! [`parallel_map`] is the single parallel primitive the workspace
//! needs: apply a `Sync` closure to every element of a slice, using all
//! available cores, and return results in input order. Work is
//! distributed by an atomic cursor (dynamic load balancing — trials at
//! large node counts take far longer than small ones, so static
//! chunking would idle half the pool), and each result is written to
//! its own pre-allocated slot, so no ordering coordination is needed.
//!
//! Built entirely on `std` (`std::thread::scope` + `std::sync::Mutex`):
//! the workspace carries no external concurrency dependencies.
//!
//! [`parallel_map_with_workers`] pins the worker count explicitly; the
//! determinism suite uses it to prove results are bit-identical across
//! pool sizes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use: all available parallelism, capped
/// so tiny task lists do not spawn idle threads.
///
/// The `FFD2D_WORKERS` environment variable, when set to a positive
/// integer, overrides the detected hardware parallelism — CI pins the
/// pool size with it, and users can rein in a shared machine without
/// code changes. Invalid or zero values are ignored.
pub fn available_workers(tasks: usize) -> usize {
    let hw = std::env::var("FFD2D_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&w| w > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    hw.min(tasks).max(1)
}

/// Apply `f` to every element of `inputs` in parallel; results are
/// returned in input order.
///
/// `f` runs on scoped threads, so it may borrow from the caller's
/// stack. Panics in workers propagate to the caller after the scope
/// joins (no result is silently dropped).
///
/// ```
/// let squares = ffd2d_parallel::parallel_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(inputs: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with_workers(inputs, None, f)
}

/// [`parallel_map`] with an explicit worker count (`None` = automatic).
///
/// The result is a pure function of `inputs` and `f` — never of the
/// worker count — because each slot is written exactly once and slots
/// are drained in input order.
pub fn parallel_map_with_workers<T, R, F>(inputs: &[T], workers: Option<usize>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers
        .unwrap_or_else(|| available_workers(n))
        .clamp(1, n.max(1));
    if workers == 1 {
        return inputs.iter().map(&f).collect();
    }

    // One slot per task; slots are disjoint, the mutex-per-slot cost is
    // negligible next to a simulation trial and keeps the code safe.
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&inputs[i]);
                *slots[i].lock().expect("slot mutex poisoned") = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot mutex poisoned")
                .expect("slot missing result")
        })
        .collect()
}

/// Shard `items` into `scratches.len()` contiguous chunks and run
/// `f(chunk_start, chunk, scratch)` for each non-empty chunk, one
/// scoped thread per shard, each with exclusive access to its own
/// scratch state.
///
/// This is the primitive behind deterministic *intra-run* parallelism:
/// the chunk boundaries are a pure function of `items.len()` and the
/// shard count (near-equal contiguous splits, earlier chunks take the
/// remainder), each scratch is written by exactly one thread, and the
/// caller merges the scratches in shard order — which *is* input order,
/// because the chunks are contiguous. Whatever the thread schedule, the
/// merged result is identical to running the chunks sequentially.
///
/// With a single scratch the chunk runs inline on the caller's thread —
/// no spawn, no synchronization — so an unengaged parallel path costs
/// nothing over the plain loop.
///
/// Panics in workers propagate to the caller when the scope joins.
pub fn sharded_for_each<T, C, F>(items: &[T], scratches: &mut [C], f: F)
where
    T: Sync,
    C: Send,
    F: Fn(usize, &[T], &mut C) + Sync,
{
    let shards = scratches.len();
    assert!(shards > 0, "sharded_for_each needs at least one scratch");
    let len = items.len();
    if shards == 1 || len <= 1 {
        if len > 0 {
            f(0, items, &mut scratches[0]);
        }
        return;
    }
    let base = len / shards;
    let rem = len % shards;
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = &mut scratches[..];
        let mut start = 0;
        for i in 0..shards {
            let size = base + usize::from(i < rem);
            let (scratch, tail) = rest.split_first_mut().expect("shard count checked");
            rest = tail;
            if size == 0 {
                continue;
            }
            let chunk = &items[start..start + size];
            let chunk_start = start;
            scope.spawn(move || f(chunk_start, chunk, scratch));
            start += size;
        }
    });
}

/// [`sharded_for_each`] with per-item weights: chunk boundaries are
/// chosen so each shard carries a near-equal share of the total weight
/// instead of a near-equal item count.
///
/// `weights` is parallel to `items` (panics on length mismatch). The
/// boundaries are a pure function of the weights and the shard count —
/// a greedy front-to-back cut at the remaining-weight / remaining-shards
/// target — so the split is deterministic and, as with
/// [`sharded_for_each`], chunks are contiguous and merge in shard order
/// = input order. Zero-weight items ride along with whichever chunk
/// reaches them; trailing shards may receive no chunk when earlier ones
/// absorb everything (their scratches are simply not visited).
///
/// The caller's merged result cannot depend on which variant split the
/// items — only wall-clock balance moves — provided its per-item work
/// is chunk-independent (true of everything in this workspace: each
/// scratch key is owned by exactly one item).
pub fn sharded_for_each_weighted<T, C, F>(items: &[T], weights: &[u64], scratches: &mut [C], f: F)
where
    T: Sync,
    C: Send,
    F: Fn(usize, &[T], &mut C) + Sync,
{
    let shards = scratches.len();
    assert!(shards > 0, "sharded_for_each_weighted needs a scratch");
    assert_eq!(
        items.len(),
        weights.len(),
        "weights must be parallel to items"
    );
    let len = items.len();
    if shards == 1 || len <= 1 {
        if len > 0 {
            f(0, items, &mut scratches[0]);
        }
        return;
    }
    let mut remaining: u64 = weights.iter().sum();
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = &mut scratches[..];
        let mut start = 0usize;
        for i in 0..shards {
            let (scratch, tail) = rest.split_first_mut().expect("shard count checked");
            rest = tail;
            if start >= len {
                break;
            }
            let shards_left = (shards - i) as u64;
            // Last shard takes the tail; earlier shards fill to the
            // per-shard target, always making progress (>= 1 item).
            let end = if i == shards - 1 {
                len
            } else {
                let target = remaining.div_ceil(shards_left);
                let mut end = start;
                let mut acc = 0u64;
                while end < len && (end == start || acc < target) {
                    acc += weights[end];
                    end += 1;
                }
                remaining -= acc;
                end
            };
            let chunk = &items[start..end];
            let chunk_start = start;
            scope.spawn(move || f(chunk_start, chunk, scratch));
            start = end;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_order() {
        let inputs: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&inputs, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let inputs: Vec<usize> = (0..512).collect();
        let counter = AtomicU64::new(0);
        let out = parallel_map(&inputs, |&i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 512);
        assert_eq!(out.len(), 512);
    }

    #[test]
    fn borrows_caller_state() {
        let base = [10u64, 20, 30];
        let inputs = vec![0usize, 1, 2];
        let out = parallel_map(&inputs, |&i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn uneven_task_durations_balance() {
        // Tasks with wildly different costs still all complete and in
        // order — exercises the dynamic cursor.
        let inputs: Vec<u64> = (0..64).collect();
        let out = parallel_map(&inputs, |&x| {
            let mut acc = 0u64;
            let iters = if x % 7 == 0 { 200_000 } else { 10 };
            for i in 0..iters {
                acc = acc.wrapping_add(i ^ x);
            }
            (x, acc).0
        });
        assert_eq!(out, inputs);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(available_workers(0), 1);
        assert!(available_workers(1) >= 1);
        assert!(available_workers(1_000_000) >= 1);
    }

    #[test]
    fn explicit_worker_counts_agree() {
        let inputs: Vec<u64> = (0..257).collect();
        let baseline: Vec<u64> = inputs.iter().map(|&x| x.wrapping_mul(x) ^ 17).collect();
        for workers in [1usize, 2, 3, 8, 64] {
            let out =
                parallel_map_with_workers(&inputs, Some(workers), |&x| x.wrapping_mul(x) ^ 17);
            assert_eq!(out, baseline, "workers={workers}");
        }
    }

    #[test]
    fn env_override_pins_worker_count() {
        // Other tests only assert `>= 1` bounds, so flipping the
        // variable here cannot perturb them.
        std::env::set_var("FFD2D_WORKERS", "3");
        assert_eq!(available_workers(1_000_000), 3);
        assert_eq!(available_workers(2), 2, "task cap still applies");
        std::env::set_var("FFD2D_WORKERS", "0");
        assert!(available_workers(64) >= 1, "zero is ignored");
        std::env::set_var("FFD2D_WORKERS", "not-a-number");
        assert!(available_workers(64) >= 1, "garbage is ignored");
        std::env::remove_var("FFD2D_WORKERS");
    }

    #[test]
    fn sharded_chunks_cover_input_in_order() {
        let items: Vec<u32> = (0..103).collect();
        for shards in [1usize, 2, 3, 8, 103, 200] {
            let mut scratches: Vec<Vec<(usize, Vec<u32>)>> = vec![Vec::new(); shards];
            sharded_for_each(&items, &mut scratches, |start, chunk, scratch| {
                scratch.push((start, chunk.to_vec()));
            });
            // Each shard got at most one contiguous chunk; concatenated
            // in shard order they reproduce the input exactly.
            let mut rebuilt: Vec<(usize, Vec<u32>)> = Vec::new();
            for s in &scratches {
                assert!(s.len() <= 1, "shards={shards}");
                rebuilt.extend(s.iter().cloned());
            }
            let mut expect_start = 0;
            let mut flat = Vec::new();
            for (start, chunk) in rebuilt {
                assert_eq!(start, expect_start, "shards={shards}");
                expect_start += chunk.len();
                flat.extend(chunk);
            }
            assert_eq!(flat, items, "shards={shards}");
        }
    }

    #[test]
    fn sharded_scratches_merge_like_sequential() {
        // Summing per shard and merging equals the sequential sum,
        // whatever the shard count.
        let items: Vec<u64> = (0..1000).map(|x| x * x + 1).collect();
        let expect: u64 = items.iter().sum();
        for shards in [1usize, 2, 5, 8, 32] {
            let mut sums = vec![0u64; shards];
            sharded_for_each(&items, &mut sums, |_, chunk, sum| {
                *sum += chunk.iter().sum::<u64>();
            });
            assert_eq!(sums.iter().sum::<u64>(), expect, "shards={shards}");
        }
    }

    #[test]
    fn sharded_empty_input_is_a_no_op() {
        let mut scratches = vec![0u32; 4];
        sharded_for_each(&[] as &[u8], &mut scratches, |_, _, s| *s += 1);
        assert_eq!(scratches, vec![0; 4]);
    }

    #[test]
    fn weighted_chunks_cover_input_in_order() {
        let items: Vec<u32> = (0..103).collect();
        // A heavily skewed weight profile: a few huge cells up front.
        let weights: Vec<u64> = (0..103u64)
            .map(|i| if i < 3 { 1000 } else { i % 7 })
            .collect();
        for shards in [1usize, 2, 3, 8, 103, 200] {
            let mut scratches: Vec<Vec<(usize, Vec<u32>)>> = vec![Vec::new(); shards];
            sharded_for_each_weighted(&items, &weights, &mut scratches, |start, chunk, scratch| {
                scratch.push((start, chunk.to_vec()));
            });
            let mut expect_start = 0;
            let mut flat = Vec::new();
            for s in &scratches {
                assert!(s.len() <= 1, "shards={shards}");
                for (start, chunk) in s {
                    assert_eq!(*start, expect_start, "shards={shards}");
                    expect_start += chunk.len();
                    flat.extend(chunk.iter().copied());
                }
            }
            assert_eq!(flat, items, "shards={shards}");
        }
    }

    #[test]
    fn weighted_split_balances_weight_not_count() {
        // One giant item followed by many small ones: the even-count
        // split would put the giant plus half the small ones on shard 0;
        // the weighted split isolates the giant.
        let items: Vec<u32> = (0..64).collect();
        let mut weights = vec![1u64; 64];
        weights[0] = 1_000;
        let mut chunks: Vec<Vec<u32>> = vec![Vec::new(); 4];
        sharded_for_each_weighted(&items, &weights, &mut chunks, |_, chunk, out| {
            out.extend_from_slice(chunk);
        });
        assert_eq!(chunks[0], vec![0], "the giant cell gets its own shard");
        let rest: usize = chunks[1..].iter().map(Vec::len).sum();
        assert_eq!(rest, 63, "remaining items spread over the other shards");
    }

    #[test]
    fn weighted_zero_weights_still_assign_every_item() {
        let items: Vec<u32> = (0..10).collect();
        let weights = vec![0u64; 10];
        for shards in [2usize, 3, 10, 16] {
            let mut counts = vec![0usize; shards];
            sharded_for_each_weighted(&items, &weights, &mut counts, |_, chunk, c| {
                *c += chunk.len();
            });
            assert_eq!(counts.iter().sum::<usize>(), 10, "shards={shards}");
        }
    }

    #[test]
    #[should_panic]
    fn weighted_length_mismatch_panics() {
        let mut scratches = vec![(); 2];
        sharded_for_each_weighted(&[1u32, 2, 3], &[1u64], &mut scratches, |_, _, _| {});
    }

    #[test]
    #[should_panic]
    fn sharded_worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let mut scratches = vec![(); 4];
        sharded_for_each(&items, &mut scratches, |start, _, _| {
            if start > 0 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let inputs = vec![0u32, 1, 2, 3, 4, 5, 6, 7];
        let _ = parallel_map(&inputs, |&x| {
            if x == 5 {
                panic!("boom");
            }
            x
        });
    }
}
