//! # ffd2d-parallel — deterministic parallel Monte-Carlo harness
//!
//! Reproducing Figs. 3–4 means running hundreds of independent trials
//! (node-count sweep × Monte-Carlo repetitions × two protocols). Each
//! trial owns its entire world (deployment, channel, protocol state), so
//! the workload is embarrassingly parallel — the canonical data-parallel
//! shape of the HPC guides, implemented entirely on `std`:
//!
//! * [`pool`] — [`pool::parallel_map`]: an order-preserving parallel map
//!   over a task list using `std::thread::scope` and an atomic
//!   work-stealing cursor. No task communicates with any other; results
//!   land in their own slots, so the output is identical to the
//!   sequential map regardless of thread count
//!   ([`pool::parallel_map_with_workers`] pins the count for the
//!   determinism suite), plus [`pool::sharded_for_each`] and its
//!   weight-balanced sibling [`pool::sharded_for_each_weighted`]:
//!   contiguous chunks with per-shard scratch state, the primitives
//!   behind deterministic *intra-run* medium sharding.
//! * [`sweep`] — the experiment-shaped layer: a parameter grid × trial
//!   count, each cell reduced with `ffd2d-metrics`-style mergeable
//!   accumulators, with deterministic per-trial seeds derived from
//!   `(master seed, param index, trial index)` — thread schedule cannot
//!   perturb any random draw.
//! * [`parallelism`] — the [`Parallelism`] knob (`Off | Fixed(k) |
//!   Auto`) by which a *single* run shards its per-slot medium
//!   resolution; `Off` by default so the two layers never
//!   oversubscribe the cores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parallelism;
pub mod pool;
pub mod sweep;

pub use parallelism::Parallelism;
pub use pool::{
    available_workers, parallel_map, parallel_map_with_workers, sharded_for_each,
    sharded_for_each_weighted,
};
pub use sweep::{
    run_sweep, run_trials, run_trials_with_workers, SweepConfig, SweepResult, TrialCtx,
};
