//! Property-based tests for the sharded-merge contract.
//!
//! The intra-run parallel medium tallies a private [`Counters`] per
//! shard and merges them in shard order. These properties pin the
//! algebra that makes that bit-identical to the sequential tally: for
//! any event stream and any contiguous sharding, per-shard tallies
//! merged in order equal tallying the whole stream sequentially.

use proptest::prelude::*;

use ffd2d_parallel::sharded_for_each;
use ffd2d_sim::counters::Counters;

/// One medium outcome, as the resolver would tally it: which counter
/// moves and by how much.
fn apply(c: &mut Counters, ev: (u8, u64)) {
    let (kind, amount) = ev;
    match kind % 8 {
        0 => c.rach1_tx += amount,
        1 => c.rach2_tx += amount,
        2 => c.unicast_tx += amount,
        3 => c.rx_ok += amount,
        4 => c.rx_collision += amount,
        5 => c.rx_below_threshold += amount,
        6 => c.fault_dropped_frames += amount,
        _ => c.fault_dup_frames += amount,
    }
}

proptest! {
    /// Sharded tallies merged in shard order equal the sequential
    /// tally, for any event stream and any shard count.
    #[test]
    fn sharded_counters_merge_equals_sequential_tally(
        events in proptest::collection::vec((any::<u8>(), 0u64..1 << 40), 0..300),
        shards in 1usize..12,
    ) {
        let mut sequential = Counters::new();
        for &ev in &events {
            apply(&mut sequential, ev);
        }

        let mut per_shard = vec![Counters::new(); shards];
        sharded_for_each(&events, &mut per_shard, |_, chunk, c| {
            for &ev in chunk {
                apply(c, ev);
            }
        });
        let mut merged = Counters::new();
        for shard in &per_shard {
            merged.merge(shard);
        }
        prop_assert_eq!(merged, sequential);
    }

    /// Merging is order-insensitive far from saturation (the resolver
    /// merges in shard order; this shows nothing depends on it).
    #[test]
    fn merge_commutes_below_saturation(
        a in proptest::collection::vec(0u64..1 << 30, 8),
        b in proptest::collection::vec(0u64..1 << 30, 8),
    ) {
        let mk = |v: &[u64]| Counters {
            rach1_tx: v[0],
            rach2_tx: v[1],
            unicast_tx: v[2],
            rx_ok: v[3],
            rx_collision: v[4],
            rx_below_threshold: v[5],
            fault_dropped_frames: v[6],
            fault_dup_frames: v[7],
        };
        let (x, y) = (mk(&a), mk(&b));
        let mut xy = x;
        xy.merge(&y);
        let mut yx = y;
        yx.merge(&x);
        prop_assert_eq!(xy, yx);
    }
}
