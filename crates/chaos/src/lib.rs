//! Deterministic fault injection and churn for the ffd2d protocols.
//!
//! The paper's robustness claim — fragments merge and re-synchronize
//! with no coordinator — is only testable if runs can *lose* devices
//! and frames. This crate defines the [`FaultPlan`]: a declarative,
//! fully seeded schedule of
//!
//! * **churn** — devices leaving and (re)joining at fixed slots;
//! * **frame faults** — per-delivery drop/duplication probabilities
//!   applied at the medium boundary;
//! * **clock skew** — per-device natural-period offsets on the
//!   oscillator;
//! * **power droops** — transient per-device TX power reductions.
//!
//! Every random decision is a *stateless keyed draw*: the fate of a
//! frame is a pure function of `(chaos key, slot, sender, receiver)`,
//! where the key is derived once per run from the master seed via the
//! dedicated [`StreamId::Chaos`] stream. No sequential RNG state is
//! consumed, so fault decisions are bit-identical across slot engines,
//! medium worker counts, and delivery orderings — the same discipline
//! the rest of the workspace uses for shadowing and fading.
//!
//! [`FaultPlan::none`] is the default everywhere and is *provably
//! outcome-neutral*: engines gate every fault branch on
//! [`FaultPlan::is_none`] and the plan adds no RNG draws, so a run
//! with no plan is bit-identical to one built before this crate
//! existed (locked by `tests/chaos.rs`).
//!
//! [`StreamId::Chaos`]: ffd2d_sim::rng::StreamId::Chaos

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::RngCore;
use serde::{Deserialize, Serialize};

use ffd2d_sim::rng::{SplitMix64, StreamId, StreamRng};

mod json;

/// Direction of a churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnKind {
    /// The device powers on (or returns) at the given slot.
    Join,
    /// The device powers off at the given slot.
    Leave,
}

/// One scheduled join/leave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Slot at which the event takes effect (processed at slot start).
    pub slot: u64,
    /// Affected device.
    pub device: u32,
    /// Join or leave.
    pub kind: ChurnKind,
}

/// A permanent per-device natural-period offset (crystal tolerance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockSkew {
    /// Affected device.
    pub device: u32,
    /// Slots added to the nominal oscillator period (negative = fast
    /// clock). Validation keeps the skewed period positive and longer
    /// than the refractory window.
    pub extra_slots: i32,
}

/// A transient TX power reduction (battery sag, thermal throttling).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerDroop {
    /// Affected device.
    pub device: u32,
    /// First slot of the droop window (inclusive).
    pub from_slot: u64,
    /// End of the droop window (exclusive).
    pub until_slot: u64,
    /// Power reduction in dB (must be ≥ 0: droops only weaken).
    pub droop_db: f64,
}

/// Fate of one individual frame delivery under the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// Delivered normally.
    Deliver,
    /// Silently lost at the receiver.
    Drop,
    /// Delivered twice (duplicated by the channel).
    Duplicate,
}

/// A complete, seeded fault schedule for one run.
///
/// The plan is *declarative*: it carries no RNG state. Engines derive
/// the per-run chaos key with [`FaultPlan::chaos_key`] and evaluate
/// frame fates with [`FaultPlan::frame_fate`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that any individual frame delivery is dropped.
    pub drop_prob: f64,
    /// Probability that any individual frame delivery is duplicated.
    pub dup_prob: f64,
    /// Join/leave schedule.
    pub churn: Vec<ChurnEvent>,
    /// Permanent per-device clock skews.
    pub skew: Vec<ClockSkew>,
    /// Transient per-device power droops.
    pub droop: Vec<PowerDroop>,
}

impl FaultPlan {
    /// The empty plan: no faults, outcome-neutral by construction.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing at all (the default).
    pub fn is_none(&self) -> bool {
        self.drop_prob == 0.0
            && self.dup_prob == 0.0
            && self.churn.is_empty()
            && self.skew.is_empty()
            && self.droop.is_empty()
    }

    /// True when any frame-level fault (drop or duplication) can occur.
    pub fn has_frame_faults(&self) -> bool {
        self.drop_prob > 0.0 || self.dup_prob > 0.0
    }

    /// Validate against a scenario: `n` devices, nominal oscillator
    /// `period_slots` and `refractory_slots`.
    pub fn validate(
        &self,
        n: usize,
        period_slots: u32,
        refractory_slots: u32,
    ) -> Result<(), String> {
        let check_prob = |p: f64, what: &str| {
            if !(0.0..=1.0).contains(&p) {
                Err(format!("{what} must be in [0, 1], got {p}"))
            } else {
                Ok(())
            }
        };
        check_prob(self.drop_prob, "drop_prob")?;
        check_prob(self.dup_prob, "dup_prob")?;
        if self.drop_prob + self.dup_prob > 1.0 {
            return Err("drop_prob + dup_prob must not exceed 1".into());
        }
        let check_device = |d: u32, what: &str| {
            if (d as usize) < n {
                Ok(())
            } else {
                Err(format!("{what} references device {d}, but n = {n}"))
            }
        };
        for ev in &self.churn {
            check_device(ev.device, "churn event")?;
        }
        for s in &self.skew {
            check_device(s.device, "clock skew")?;
            let skewed = period_slots as i64 + s.extra_slots as i64;
            if skewed <= refractory_slots as i64 {
                return Err(format!(
                    "skewed period {skewed} for device {} must stay above the refractory window {refractory_slots}",
                    s.device
                ));
            }
            if skewed > u32::MAX as i64 {
                return Err(format!("skewed period {skewed} overflows u32"));
            }
        }
        for d in &self.droop {
            check_device(d.device, "power droop")?;
            if d.droop_db < 0.0 || !d.droop_db.is_finite() {
                return Err(format!(
                    "droop_db must be finite and ≥ 0, got {}",
                    d.droop_db
                ));
            }
            if d.until_slot <= d.from_slot {
                return Err(format!(
                    "droop window [{}, {}) for device {} is empty",
                    d.from_slot, d.until_slot, d.device
                ));
            }
        }
        Ok(())
    }

    /// Slot of the last *discrete* fault (final churn event or droop
    /// window end). `None` when the plan has no discrete faults —
    /// permanent conditions (skew, frame-loss probabilities) have no
    /// "last" slot, so re-convergence is only measured against churn
    /// and droops.
    pub fn last_fault_slot(&self) -> Option<u64> {
        let churn_last = self.churn.iter().map(|e| e.slot).max();
        let droop_last = self.droop.iter().map(|d| d.until_slot).max();
        match (churn_last, droop_last) {
            (None, None) => None,
            (a, b) => Some(a.unwrap_or(0).max(b.unwrap_or(0))),
        }
    }

    /// The churn schedule sorted by `(slot, device)` — the order in
    /// which engines must apply it.
    pub fn sorted_churn(&self) -> Vec<ChurnEvent> {
        let mut churn = self.churn.clone();
        churn.sort_by_key(|e| (e.slot, e.device, e.kind == ChurnKind::Leave));
        churn
    }

    /// Initial activity mask: a device whose *first* churn event is a
    /// `Join` starts the run powered off; everyone else starts active.
    pub fn initial_active(&self, n: usize) -> Vec<bool> {
        let mut active = vec![true; n];
        let churn = self.sorted_churn();
        let mut seen = vec![false; n];
        for ev in &churn {
            let d = ev.device as usize;
            if d < n && !seen[d] {
                seen[d] = true;
                if ev.kind == ChurnKind::Join {
                    active[d] = false;
                }
            }
        }
        active
    }

    /// Per-device oscillator period under the plan's clock skews.
    /// Validation guarantees the result is positive and above the
    /// refractory window.
    pub fn period_for(&self, device: u32, nominal_slots: u32) -> u32 {
        let extra: i64 = self
            .skew
            .iter()
            .filter(|s| s.device == device)
            .map(|s| s.extra_slots as i64)
            .sum();
        (nominal_slots as i64 + extra).max(1) as u32
    }

    /// Total TX power droop (dB) for `device` at `slot`.
    pub fn droop_db_at(&self, device: u32, slot: u64) -> f64 {
        self.droop
            .iter()
            .filter(|d| d.device == device && (d.from_slot..d.until_slot).contains(&slot))
            .map(|d| d.droop_db)
            .sum()
    }

    /// Derive the per-run chaos key from the master seed: one draw from
    /// the dedicated [`StreamId::Chaos`] stream. Engines compute this
    /// once; it never consumes any other subsystem's stream.
    pub fn chaos_key(master_seed: u64) -> u64 {
        StreamRng::new(master_seed, 0, StreamId::Chaos).next_u64()
    }

    /// Fate of the frame delivery `(sender → receiver)` at `slot`.
    ///
    /// A stateless keyed draw: the same `(key, slot, sender, receiver)`
    /// always yields the same fate, regardless of evaluation order —
    /// this is what makes frame faults bit-identical across engines and
    /// medium worker counts.
    pub fn frame_fate(&self, key: u64, slot: u64, sender: u32, receiver: u32) -> FrameFate {
        if !self.has_frame_faults() {
            return FrameFate::Deliver;
        }
        let pair = ((sender as u64) << 32) | receiver as u64;
        // `FATE_SALT` domain-separates frame fates from every other
        // keyed draw sharing the chaos key.
        const FATE_SALT: u64 = 0xC4A0_55ED;
        let u = SplitMix64::keyed_unit(key, slot ^ FATE_SALT, pair);
        if u < self.drop_prob {
            FrameFate::Drop
        } else if u < self.drop_prob + self.dup_prob {
            FrameFate::Duplicate
        } else {
            FrameFate::Deliver
        }
    }

    /// Parse a plan from its JSON representation (see `json` module
    /// docs for the schema).
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        json::plan_from_json(text)
    }

    /// Resolve a `--faults` CLI spec: a preset name (`churn-light`,
    /// `churn-heavy`, `lossy`) scaled to the scenario, or a path ending
    /// in `.json` holding a serialized plan.
    pub fn resolve(spec: &str, n: usize, horizon_slots: u64) -> Result<FaultPlan, String> {
        match spec {
            "churn-light" => Ok(Self::churn_preset(n, horizon_slots, 20, true, 0.0)),
            "churn-heavy" => Ok(Self::churn_preset(n, horizon_slots, 5, false, 0.02)),
            "lossy" => Ok(FaultPlan {
                drop_prob: 0.10,
                dup_prob: 0.02,
                ..FaultPlan::none()
            }),
            path if path.ends_with(".json") => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("reading fault plan {path}: {e}"))?;
                Self::from_json(&text)
            }
            other => Err(format!(
                "unknown fault spec {other:?} (expected churn-light, churn-heavy, lossy, or a .json path)"
            )),
        }
    }

    /// `1/divisor` of the population leaves at a third of the horizon;
    /// everyone (or, for heavy churn, every other leaver) rejoins at two
    /// thirds. Event slots are staggered so departures don't land on
    /// one slot.
    fn churn_preset(
        n: usize,
        horizon: u64,
        divisor: usize,
        all_rejoin: bool,
        drop_prob: f64,
    ) -> FaultPlan {
        let k = (n / divisor).max(1);
        let stride = (n / k).max(1);
        let leave_at = horizon / 3;
        let rejoin_at = horizon * 2 / 3;
        let mut churn = Vec::new();
        for i in 0..k {
            let device = (i * stride) as u32;
            let stagger = (i as u64) * 37 % (horizon / 12).max(1);
            churn.push(ChurnEvent {
                slot: leave_at + stagger,
                device,
                kind: ChurnKind::Leave,
            });
            if all_rejoin || i % 2 == 0 {
                churn.push(ChurnEvent {
                    slot: rejoin_at + stagger,
                    device,
                    kind: ChurnKind::Join,
                });
            }
        }
        FaultPlan {
            drop_prob,
            churn,
            ..FaultPlan::none()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::default().is_none());
        assert_eq!(FaultPlan::none().last_fault_slot(), None);
        assert!(FaultPlan::none().validate(10, 100, 12).is_ok());
    }

    #[test]
    fn frame_fate_is_pure_and_order_free() {
        let plan = FaultPlan {
            drop_prob: 0.3,
            dup_prob: 0.1,
            ..FaultPlan::none()
        };
        let key = FaultPlan::chaos_key(42);
        let a = plan.frame_fate(key, 100, 3, 7);
        for _ in 0..4 {
            assert_eq!(plan.frame_fate(key, 100, 3, 7), a);
        }
        // Different seeds decorrelate the schedule.
        let other = FaultPlan::chaos_key(43);
        assert_ne!(key, other);
    }

    #[test]
    fn frame_fate_hits_requested_rates() {
        let plan = FaultPlan {
            drop_prob: 0.2,
            dup_prob: 0.1,
            ..FaultPlan::none()
        };
        let key = FaultPlan::chaos_key(7);
        let (mut drops, mut dups, total) = (0u32, 0u32, 20_000u32);
        for i in 0..total {
            match plan.frame_fate(key, i as u64, i % 50, (i / 50) % 50) {
                FrameFate::Drop => drops += 1,
                FrameFate::Duplicate => dups += 1,
                FrameFate::Deliver => {}
            }
        }
        let drop_rate = drops as f64 / total as f64;
        let dup_rate = dups as f64 / total as f64;
        assert!((drop_rate - 0.2).abs() < 0.02, "drop rate {drop_rate}");
        assert!((dup_rate - 0.1).abs() < 0.02, "dup rate {dup_rate}");
    }

    #[test]
    fn no_frame_faults_short_circuits() {
        let plan = FaultPlan {
            churn: vec![ChurnEvent {
                slot: 5,
                device: 0,
                kind: ChurnKind::Leave,
            }],
            ..FaultPlan::none()
        };
        assert!(!plan.has_frame_faults());
        assert_eq!(plan.frame_fate(1, 2, 3, 4), FrameFate::Deliver);
    }

    #[test]
    fn initial_active_respects_first_event() {
        let plan = FaultPlan {
            churn: vec![
                ChurnEvent {
                    slot: 50,
                    device: 1,
                    kind: ChurnKind::Join,
                },
                ChurnEvent {
                    slot: 10,
                    device: 1,
                    kind: ChurnKind::Leave,
                },
                ChurnEvent {
                    slot: 5,
                    device: 2,
                    kind: ChurnKind::Join,
                },
            ],
            ..FaultPlan::none()
        };
        // Device 1's first event (slot 10) is a Leave ⇒ starts active;
        // device 2's first event is a Join ⇒ starts off.
        assert_eq!(plan.initial_active(4), vec![true, true, false, true]);
    }

    #[test]
    fn periods_and_droops() {
        let plan = FaultPlan {
            skew: vec![ClockSkew {
                device: 2,
                extra_slots: -3,
            }],
            droop: vec![PowerDroop {
                device: 1,
                from_slot: 10,
                until_slot: 20,
                droop_db: 12.0,
            }],
            ..FaultPlan::none()
        };
        assert_eq!(plan.period_for(2, 100), 97);
        assert_eq!(plan.period_for(0, 100), 100);
        assert_eq!(plan.droop_db_at(1, 10), 12.0);
        assert_eq!(plan.droop_db_at(1, 20), 0.0);
        assert_eq!(plan.droop_db_at(0, 15), 0.0);
        assert_eq!(plan.last_fault_slot(), Some(20));
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let mut plan = FaultPlan::none();
        plan.drop_prob = 1.5;
        assert!(plan.validate(10, 100, 12).is_err());

        let skewed = FaultPlan {
            skew: vec![ClockSkew {
                device: 0,
                extra_slots: -95,
            }],
            ..FaultPlan::none()
        };
        // 100 - 95 = 5 ≤ refractory 12 ⇒ rejected.
        assert!(skewed.validate(10, 100, 12).is_err());

        let out_of_range = FaultPlan {
            churn: vec![ChurnEvent {
                slot: 1,
                device: 10,
                kind: ChurnKind::Leave,
            }],
            ..FaultPlan::none()
        };
        assert!(out_of_range.validate(10, 100, 12).is_err());

        let empty_window = FaultPlan {
            droop: vec![PowerDroop {
                device: 0,
                from_slot: 5,
                until_slot: 5,
                droop_db: 3.0,
            }],
            ..FaultPlan::none()
        };
        assert!(empty_window.validate(10, 100, 12).is_err());
    }

    #[test]
    fn presets_resolve_and_validate() {
        for spec in ["churn-light", "churn-heavy", "lossy"] {
            let plan = FaultPlan::resolve(spec, 100, 30_000).expect(spec);
            assert!(!plan.is_none(), "{spec} must inject something");
            assert!(plan.validate(100, 100, 12).is_ok(), "{spec} must validate");
        }
        assert!(FaultPlan::resolve("bogus", 100, 30_000).is_err());
        // Churn presets schedule every event inside the horizon.
        let plan = FaultPlan::resolve("churn-heavy", 200, 12_000).unwrap();
        assert!(plan.churn.iter().all(|e| e.slot < 12_000));
        assert!(plan.last_fault_slot().unwrap() < 12_000);
    }
}
