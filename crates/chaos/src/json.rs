//! Minimal JSON reader for [`FaultPlan`] files.
//!
//! The workspace's `serde` is an inert offline stub (derives compile
//! but do nothing), so `--faults PLAN.json` is parsed by hand — the
//! same approach `ffd2d-trace` takes for its JSONL logs. The schema:
//!
//! ```json
//! {
//!   "drop_prob": 0.05,
//!   "dup_prob": 0.01,
//!   "churn": [ {"slot": 1000, "device": 3, "kind": "leave"} ],
//!   "skew": [ {"device": 1, "extra_slots": -4} ],
//!   "droop": [ {"device": 2, "from_slot": 100, "until_slot": 400, "droop_db": 12.0} ]
//! }
//! ```
//!
//! Every field is optional and defaults to "no fault". Unknown keys
//! are rejected so typos fail loudly instead of silently injecting
//! nothing.

use crate::{ChurnEvent, ChurnKind, ClockSkew, FaultPlan, PowerDroop};

/// A parsed JSON value (only what the schema needs).
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("fault plan JSON: {msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            if b == b'\\' {
                return Err(self.err("escape sequences are not supported"));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(&format!("bad number {text:?}")))
    }
}

fn as_obj(v: &Value, what: &str) -> Result<Vec<(String, Value)>, String> {
    match v {
        Value::Obj(fields) => Ok(fields.clone()),
        _ => Err(format!("fault plan JSON: {what} must be an object")),
    }
}

fn as_num(v: &Value, what: &str) -> Result<f64, String> {
    match v {
        Value::Num(n) => Ok(*n),
        _ => Err(format!("fault plan JSON: {what} must be a number")),
    }
}

fn as_u64(v: &Value, what: &str) -> Result<u64, String> {
    let n = as_num(v, what)?;
    if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
        return Err(format!(
            "fault plan JSON: {what} must be a non-negative integer, got {n}"
        ));
    }
    Ok(n as u64)
}

fn as_u32(v: &Value, what: &str) -> Result<u32, String> {
    let n = as_u64(v, what)?;
    u32::try_from(n).map_err(|_| format!("fault plan JSON: {what} {n} overflows u32"))
}

fn as_i32(v: &Value, what: &str) -> Result<i32, String> {
    let n = as_num(v, what)?;
    if n.fract() != 0.0 || n < i32::MIN as f64 || n > i32::MAX as f64 {
        return Err(format!(
            "fault plan JSON: {what} must be an i32 integer, got {n}"
        ));
    }
    Ok(n as i32)
}

fn field<'v>(fields: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn check_keys(fields: &[(String, Value)], allowed: &[&str], what: &str) -> Result<(), String> {
    for (k, _) in fields {
        if !allowed.contains(&k.as_str()) {
            return Err(format!("fault plan JSON: unknown key {k:?} in {what}"));
        }
    }
    Ok(())
}

/// Parse a complete [`FaultPlan`] document.
pub(crate) fn plan_from_json(text: &str) -> Result<FaultPlan, String> {
    let mut p = Parser::new(text);
    let root = p.value()?;
    if p.peek().is_some() {
        return Err(p.err("trailing data after document"));
    }
    let fields = as_obj(&root, "top level")?;
    check_keys(
        &fields,
        &["drop_prob", "dup_prob", "churn", "skew", "droop"],
        "top level",
    )?;
    let mut plan = FaultPlan::none();
    if let Some(v) = field(&fields, "drop_prob") {
        plan.drop_prob = as_num(v, "drop_prob")?;
    }
    if let Some(v) = field(&fields, "dup_prob") {
        plan.dup_prob = as_num(v, "dup_prob")?;
    }
    if let Some(Value::Arr(items)) = field(&fields, "churn") {
        for item in items {
            let f = as_obj(item, "churn entry")?;
            check_keys(&f, &["slot", "device", "kind"], "churn entry")?;
            let kind = match field(&f, "kind") {
                Some(Value::Str(s)) if s == "join" => ChurnKind::Join,
                Some(Value::Str(s)) if s == "leave" => ChurnKind::Leave,
                _ => return Err("fault plan JSON: churn kind must be \"join\" or \"leave\"".into()),
            };
            plan.churn.push(ChurnEvent {
                slot: as_u64(
                    field(&f, "slot").ok_or("fault plan JSON: churn entry needs slot")?,
                    "slot",
                )?,
                device: as_u32(
                    field(&f, "device").ok_or("fault plan JSON: churn entry needs device")?,
                    "device",
                )?,
                kind,
            });
        }
    } else if field(&fields, "churn").is_some() {
        return Err("fault plan JSON: churn must be an array".into());
    }
    if let Some(Value::Arr(items)) = field(&fields, "skew") {
        for item in items {
            let f = as_obj(item, "skew entry")?;
            check_keys(&f, &["device", "extra_slots"], "skew entry")?;
            plan.skew.push(ClockSkew {
                device: as_u32(
                    field(&f, "device").ok_or("fault plan JSON: skew entry needs device")?,
                    "device",
                )?,
                extra_slots: as_i32(
                    field(&f, "extra_slots")
                        .ok_or("fault plan JSON: skew entry needs extra_slots")?,
                    "extra_slots",
                )?,
            });
        }
    } else if field(&fields, "skew").is_some() {
        return Err("fault plan JSON: skew must be an array".into());
    }
    if let Some(Value::Arr(items)) = field(&fields, "droop") {
        for item in items {
            let f = as_obj(item, "droop entry")?;
            check_keys(
                &f,
                &["device", "from_slot", "until_slot", "droop_db"],
                "droop entry",
            )?;
            plan.droop.push(PowerDroop {
                device: as_u32(
                    field(&f, "device").ok_or("fault plan JSON: droop entry needs device")?,
                    "device",
                )?,
                from_slot: as_u64(
                    field(&f, "from_slot").ok_or("fault plan JSON: droop entry needs from_slot")?,
                    "from_slot",
                )?,
                until_slot: as_u64(
                    field(&f, "until_slot")
                        .ok_or("fault plan JSON: droop entry needs until_slot")?,
                    "until_slot",
                )?,
                droop_db: as_num(
                    field(&f, "droop_db").ok_or("fault plan JSON: droop entry needs droop_db")?,
                    "droop_db",
                )?,
            });
        }
    } else if field(&fields, "droop").is_some() {
        return Err("fault plan JSON: droop must be an array".into());
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_document_parses() {
        let text = r#"{
            "drop_prob": 0.05,
            "dup_prob": 0.01,
            "churn": [
                {"slot": 1000, "device": 3, "kind": "leave"},
                {"slot": 2000, "device": 3, "kind": "join"}
            ],
            "skew": [{"device": 1, "extra_slots": -4}],
            "droop": [{"device": 2, "from_slot": 100, "until_slot": 400, "droop_db": 12.0}]
        }"#;
        let plan = plan_from_json(text).unwrap();
        assert_eq!(plan.drop_prob, 0.05);
        assert_eq!(plan.dup_prob, 0.01);
        assert_eq!(plan.churn.len(), 2);
        assert_eq!(plan.churn[0].kind, ChurnKind::Leave);
        assert_eq!(plan.skew[0].extra_slots, -4);
        assert_eq!(plan.droop[0].droop_db, 12.0);
    }

    #[test]
    fn empty_object_is_none() {
        assert!(plan_from_json("{}").unwrap().is_none());
        assert!(plan_from_json("  { }  ").unwrap().is_none());
    }

    #[test]
    fn bad_documents_are_rejected() {
        for bad in [
            "",
            "[]",
            "{",
            r#"{"drop_prob": "high"}"#,
            r#"{"typo_prob": 0.1}"#,
            r#"{"churn": [{"slot": 1, "device": 0, "kind": "explode"}]}"#,
            r#"{"churn": [{"slot": -1, "device": 0, "kind": "leave"}]}"#,
            r#"{"churn": 3}"#,
            r#"{} trailing"#,
        ] {
            assert!(plan_from_json(bad).is_err(), "accepted {bad:?}");
        }
    }
}
