//! # ffd2d — firefly-inspired proximity discovery & synchronization for D2D
//!
//! Facade crate for the `ffd2d` workspace: a from-scratch Rust
//! reproduction of Pratap & Misra, *"Firefly inspired Improved
//! Distributed Proximity Algorithm for D2D Communication"* (IPDPSW
//! 2015).
//!
//! The workspace implements the full stack the paper assumes:
//!
//! * [`sim`] — slotted discrete-event kernel (1 ms LTE slots),
//!   deterministic RNG streams, deployments.
//! * [`radio`] — path loss (Table I piecewise model), log-normal
//!   shadowing, UMi-NLOS fast fading, RSSI ranging with the paper's
//!   error model (eqs. 6–12), link budgets.
//! * [`phy`] — Zadoff–Chu RACH preambles, the two-codec proximity-signal
//!   scheme (RACH1/RACH2), collision model, resource grid.
//! * [`graph`] — weighted proximity graphs, union–find, maximum spanning
//!   tree algorithms (Borůvka / Kruskal / Prim) and GHS-style fragments.
//! * [`osc`] — Mirollo–Strogatz pulse-coupled oscillators with the
//!   paper's phase-response curve (eq. 5).
//! * [`core`] — the paper's contribution: Algorithms 1–3 and the
//!   event-driven **ST** protocol (tree-based firefly synchronization
//!   with RSSI ranging).
//! * [`baseline`] — the **FST** comparator (Chao et al. 2013) used in
//!   Figs. 3 and 4.
//! * [`metrics`], [`parallel`], [`experiments`] — statistics, parallel
//!   Monte-Carlo harness, and reproductions of every figure/table.
//! * [`trace`], [`telemetry`] — zero-cost-off observability: protocol
//!   event tracing and runtime performance telemetry (self-profiling
//!   engines, run manifests).
//!
//! ## Quickstart
//!
//! ```
//! use ffd2d::core::{ScenarioConfig, StProtocol};
//! use ffd2d::sim::SlotDuration;
//!
//! let cfg = ScenarioConfig::table1(50).seeded(7).with_max_slots(SlotDuration(50_000));
//! let outcome = StProtocol::run(&cfg);
//! assert!(outcome.converged());
//! println!(
//!     "converged in {} ms with {} messages",
//!     outcome.convergence_time.unwrap().as_millis(),
//!     outcome.counters.total_tx()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ffd2d_baseline as baseline;
pub use ffd2d_chaos as chaos;
pub use ffd2d_core as core;
pub use ffd2d_experiments as experiments;
pub use ffd2d_graph as graph;
pub use ffd2d_metrics as metrics;
pub use ffd2d_osc as osc;
pub use ffd2d_parallel as parallel;
pub use ffd2d_phy as phy;
pub use ffd2d_radio as radio;
pub use ffd2d_sim as sim;
pub use ffd2d_telemetry as telemetry;
pub use ffd2d_trace as trace;
